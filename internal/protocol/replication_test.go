package protocol

import (
	"bytes"
	"errors"
	"strings"
	"testing"
)

// recordingReplicator captures fan-out calls; values are copied, per
// the Replicator borrow contract.
type recordingReplicator struct {
	sets    []replSet
	deletes []replDel
	touches []replTouchRec
	flushes []replFlushRec
	fail    error // returned from every call when non-nil
}

type replSet struct {
	key     string
	value   string
	flags   uint32
	exptime int64
	mode    ReplMode
}

type replDel struct {
	key  string
	mode ReplMode
}

type replTouchRec struct {
	key     string
	exptime int64
	mode    ReplMode
}

type replFlushRec struct {
	delay int64
	mode  ReplMode
}

func (r *recordingReplicator) ReplicateSet(key string, value []byte, flags uint32, exptime int64, mode ReplMode) error {
	if r.fail != nil {
		return r.fail
	}
	r.sets = append(r.sets, replSet{key, string(value), flags, exptime, mode})
	return nil
}

func (r *recordingReplicator) ReplicateDelete(key string, mode ReplMode) error {
	if r.fail != nil {
		return r.fail
	}
	r.deletes = append(r.deletes, replDel{key, mode})
	return nil
}

func (r *recordingReplicator) ReplicateTouch(key string, exptime int64, mode ReplMode) error {
	if r.fail != nil {
		return r.fail
	}
	r.touches = append(r.touches, replTouchRec{key, exptime, mode})
	return nil
}

func (r *recordingReplicator) ReplicateFlush(delay int64, mode ReplMode) error {
	if r.fail != nil {
		return r.fail
	}
	r.flushes = append(r.flushes, replFlushRec{delay, mode})
	return nil
}

// frameVb is frame with an explicit vbucket field — the ReplMode carrier.
func frameVb(opcode byte, key string, extras, value []byte, vbucket uint16, opaque uint32) []byte {
	f := frame(opcode, key, extras, value, 0, opaque)
	f[6] = byte(vbucket >> 8)
	f[7] = byte(vbucket)
	return f
}

func runBinaryRepl(t *testing.T, repl Replicator, frames ...[]byte) []binResponse {
	t.Helper()
	var in bytes.Buffer
	for _, f := range frames {
		in.Write(f)
	}
	buf := &rwBuffer{in: bytes.NewReader(in.Bytes())}
	sess := NewBinarySession(newStore(t), buf)
	sess.SetReplicator(repl)
	if err := sess.Serve(); err != nil {
		t.Fatalf("serve: %v", err)
	}
	return parseResponses(t, buf.out.Bytes())
}

// TestBinaryReplicatorModes: the vbucket field selects the per-op mode,
// ReplLocal frames are never re-replicated, unknown vbucket values fall
// back to the server default.
func TestBinaryReplicatorModes(t *testing.T) {
	rec := &recordingReplicator{}
	rs := runBinaryRepl(t, rec,
		frameVb(OpSet, "k-default", setExtras(1, 0), []byte("v0"), uint16(ReplDefault), 1),
		frameVb(OpSet, "k-local", setExtras(2, 0), []byte("v1"), uint16(ReplLocal), 2),
		frameVb(OpSet, "k-async", setExtras(3, 0), []byte("v2"), uint16(ReplAsync), 3),
		frameVb(OpSet, "k-quorum", setExtras(4, 0), []byte("v3"), uint16(ReplQuorum), 4),
		frameVb(OpSet, "k-weird", setExtras(5, 0), []byte("v4"), 999, 5),
		frameVb(OpDelete, "k-async", nil, nil, uint16(ReplAsync), 6),
		frameVb(OpDelete, "k-local", nil, nil, uint16(ReplLocal), 7),
	)
	for i, r := range rs {
		if r.status != StatusOK {
			t.Fatalf("response %d: status %#04x", i, r.status)
		}
	}
	want := []replSet{
		{"k-default", "v0", 1, 0, ReplDefault},
		{"k-async", "v2", 3, 0, ReplAsync},
		{"k-quorum", "v3", 4, 0, ReplQuorum},
		{"k-weird", "v4", 5, 0, ReplDefault},
	}
	if len(rec.sets) != len(want) {
		t.Fatalf("replicated sets = %+v, want %+v", rec.sets, want)
	}
	for i := range want {
		if rec.sets[i] != want[i] {
			t.Fatalf("set %d = %+v, want %+v", i, rec.sets[i], want[i])
		}
	}
	if len(rec.deletes) != 1 || rec.deletes[0] != (replDel{"k-async", ReplAsync}) {
		t.Fatalf("replicated deletes = %+v", rec.deletes)
	}
}

// TestBinaryQuorumShortfall: a failing Replicator turns an otherwise
// successful store into StatusNoQuorum — including on quiet opcodes,
// where plain success would have been silent.
func TestBinaryQuorumShortfall(t *testing.T) {
	rec := &recordingReplicator{fail: errors.New("2 of 3 acks")}
	rs := runBinaryRepl(t, rec,
		frameVb(OpSet, "a", setExtras(0, 0), []byte("x"), uint16(ReplQuorum), 1),
		frameVb(OpSetQ, "b", setExtras(0, 0), []byte("y"), uint16(ReplQuorum), 2),
		frame(OpNoop, "", nil, nil, 0, 3),
	)
	if len(rs) != 3 {
		t.Fatalf("got %d responses, want 3 (set, quiet-set error, noop)", len(rs))
	}
	if rs[0].status != StatusNoQuorum || rs[0].opaque != 1 {
		t.Fatalf("quorum shortfall response: %+v", rs[0])
	}
	if rs[1].status != StatusNoQuorum || rs[1].opaque != 2 {
		t.Fatalf("quiet quorum shortfall must still respond: %+v", rs[1])
	}
}

// TestASCIIReplicatorHooks: ASCII writes replicate with the server
// default mode; append/prepend and incr stay local-only.
func TestASCIIReplicatorHooks(t *testing.T) {
	rec := &recordingReplicator{}
	store := newStore(t)
	buf := &rwBuffer{in: bytes.NewReader([]byte(
		"set foo 7 0 5\r\nhello\r\n" +
			"append foo 0 0 1\r\n!\r\n" +
			"delete foo\r\n" +
			"set n 0 0 1\r\n1\r\n" +
			"incr n 1\r\n"))}
	sess := NewSession(store, buf)
	sess.SetReplicator(rec)
	if err := sess.Serve(); err != nil {
		t.Fatalf("serve: %v", err)
	}
	if len(rec.sets) != 2 || rec.sets[0].key != "foo" || rec.sets[0].mode != ReplDefault ||
		rec.sets[0].value != "hello" || rec.sets[1].key != "n" {
		t.Fatalf("ascii replicated sets = %+v", rec.sets)
	}
	if len(rec.deletes) != 1 || rec.deletes[0].key != "foo" {
		t.Fatalf("ascii replicated deletes = %+v", rec.deletes)
	}
}

// TestASCIIReplicationFailureIsServerError: a replication failure on
// the ASCII path surfaces as SERVER_ERROR, and a failed delete still
// reports the failure rather than DELETED.
func TestASCIIReplicationFailureIsServerError(t *testing.T) {
	rec := &recordingReplicator{fail: errors.New("no quorum")}
	store := newStore(t)
	if err := store.Set("gone", []byte("x"), 0, 0); err != nil {
		t.Fatal(err)
	}
	buf := &rwBuffer{in: bytes.NewReader([]byte(
		"set foo 0 0 1\r\nx\r\ndelete gone\r\n"))}
	sess := NewSession(store, buf)
	sess.SetReplicator(rec)
	if err := sess.Serve(); err != nil {
		t.Fatalf("serve: %v", err)
	}
	out := buf.out.String()
	lines := strings.Split(strings.TrimRight(out, "\r\n"), "\r\n")
	if len(lines) != 2 ||
		!strings.HasPrefix(lines[0], "SERVER_ERROR") ||
		!strings.HasPrefix(lines[1], "SERVER_ERROR") {
		t.Fatalf("out = %q, want two SERVER_ERROR lines", out)
	}
}

// TestReplModeNames pins the flag-facing names and the vbucket decode.
func TestReplModeNames(t *testing.T) {
	for _, tc := range []struct {
		s    string
		mode ReplMode
	}{{"default", ReplDefault}, {"local", ReplLocal}, {"async", ReplAsync}, {"quorum", ReplQuorum}} {
		m, ok := ParseReplMode(tc.s)
		if !ok || m != tc.mode {
			t.Fatalf("ParseReplMode(%q) = %v, %v", tc.s, m, ok)
		}
		if tc.mode.String() != tc.s {
			t.Fatalf("mode %d String = %q, want %q", tc.mode, tc.mode.String(), tc.s)
		}
	}
	if _, ok := ParseReplMode("bogus"); ok {
		t.Fatal("ParseReplMode accepted bogus mode")
	}
	if m := ReplModeFromVbucket(uint16(ReplQuorum)); m != ReplQuorum {
		t.Fatalf("vbucket decode = %v", m)
	}
	if m := ReplModeFromVbucket(4); m != ReplDefault {
		t.Fatalf("unknown vbucket should fall back to default, got %v", m)
	}
}
