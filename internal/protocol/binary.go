package protocol

// The memcached binary protocol: 24-byte framed requests/responses with
// quiet (pipelined) variants. kvserver sniffs the first byte of a
// connection (0x80) and routes it here; everything else speaks the ASCII
// protocol. Opcode coverage matches memcached 1.4: get/getq/getk/getkq,
// set/add/replace (+quiet), delete(+q), incr/decr(+q), append/prepend
// (+q), quit(+q), flush(+q), noop, version, touch, stat.

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"strconv"

	"kv3d/internal/kvstore"
	"kv3d/internal/sim"
)

// Binary protocol magic bytes.
const (
	MagicRequest  = 0x80
	MagicResponse = 0x81
)

// Binary opcodes.
const (
	OpGet      = 0x00
	OpSet      = 0x01
	OpAdd      = 0x02
	OpReplace  = 0x03
	OpDelete   = 0x04
	OpIncr     = 0x05
	OpDecr     = 0x06
	OpQuit     = 0x07
	OpFlush    = 0x08
	OpGetQ     = 0x09
	OpNoop     = 0x0a
	OpVersion  = 0x0b
	OpGetK     = 0x0c
	OpGetKQ    = 0x0d
	OpAppend   = 0x0e
	OpPrepend  = 0x0f
	OpStat     = 0x10
	OpSetQ     = 0x11
	OpAddQ     = 0x12
	OpReplaceQ = 0x13
	OpDeleteQ  = 0x14
	OpIncrQ    = 0x15
	OpDecrQ    = 0x16
	OpQuitQ    = 0x17
	OpFlushQ   = 0x18
	OpAppendQ  = 0x19
	OpPrependQ = 0x1a
	OpTouch    = 0x1c
)

// Binary response status codes.
const (
	StatusOK             = 0x0000
	StatusKeyNotFound    = 0x0001
	StatusKeyExists      = 0x0002
	StatusValueTooLarge  = 0x0003
	StatusInvalidArgs    = 0x0004
	StatusNotStored      = 0x0005
	StatusNonNumeric     = 0x0006
	StatusUnknownCommand = 0x0081
	StatusOutOfMemory    = 0x0082
	// StatusBusy is the load-shedding refusal, the binary twin of the
	// ASCII "SERVER_ERROR busy" line (memcached's EBUSY status).
	StatusBusy = 0x0085
)

const binHeaderLen = 24

// maxBinaryBody bounds one frame's body, mirroring the item size limit
// plus headroom for key and extras.
const maxBinaryBody = kvstore.DefaultMaxItemSize + 1024

type binHeader struct {
	magic     byte
	opcode    byte
	keyLen    uint16
	extrasLen uint8
	status    uint16 // vbucket on requests
	bodyLen   uint32
	opaque    uint32
	cas       uint64
}

func parseBinHeader(buf []byte) binHeader {
	return binHeader{
		magic:     buf[0],
		opcode:    buf[1],
		keyLen:    binary.BigEndian.Uint16(buf[2:]),
		extrasLen: buf[4],
		status:    binary.BigEndian.Uint16(buf[6:]),
		bodyLen:   binary.BigEndian.Uint32(buf[8:]),
		opaque:    binary.BigEndian.Uint32(buf[12:]),
		cas:       binary.BigEndian.Uint64(buf[16:]),
	}
}

// BinarySession serves the binary protocol on one connection.
type BinarySession struct {
	store *kvstore.Store
	r     *bufio.Reader
	w     *bufio.Writer
	body  []byte // reused frame body buffer

	// Optional per-op observation, as on Session.
	obs      Observer
	nowNanos func() sim.Ns

	// Optional sampled flight tracing, as on Session. Binary spans
	// carry the request's opaque field as the correlation key.
	flight      SpanObserver
	flightEvery uint64
	flightSeq   uint64
	spanActive  bool
	tParse      sim.Ns
	tExec       sim.Ns

	// Optional admission gate, as on Session.
	gate Gate

	// Optional replica fan-out hook; nil means every write is local.
	repl Replicator

	// Optional cross-connection coalescer (the event-driven batched
	// core). When set, get-family frames are staged into a run that
	// executes as one shard-ordered round — this is what lets a getq
	// pipeline from one client merge with other connections' lookups —
	// and response flushes are deferred while more frames are buffered.
	coal   *kvstore.Coalescer
	getJob kvstore.GetJob
	setJob kvstore.SetJob
	setOps []kvstore.SetOp

	// Staged get run: headers and arena-copied keys of consecutive
	// get-family frames admitted but not yet executed. Keys are copies
	// (the frame body buffer is reused per frame), recorded as arena
	// offsets so arena growth cannot invalidate them. stagedGate counts
	// gate slots held by staged frames; stagedStart carries each staged
	// frame's op-clock stamp for deferred observation.
	staged      []stagedGet
	stagedKeys  [][]byte
	keyArena    []byte
	stagedGate  int
	stagedStart []sim.Ns
}

// stagedGet is one queued get-family frame of the current run.
type stagedGet struct {
	h              binHeader
	keyOff, keyLen int
}

// maxStagedRun bounds one run; a longer pipeline executes as several
// rounds so a single connection cannot monopolize a round (and the
// arena stays small enough to pool).
const maxStagedRun = 256

// SetGate installs an in-flight admission gate; call before Serve.
func (s *BinarySession) SetGate(g Gate) { s.gate = g }

// SetCoalescer switches the session into batched mode, as on
// Session.SetCoalescer. Response bytes are identical to per-op mode;
// only store-call grouping and syscall segmentation change. Call
// before Serve.
func (s *BinarySession) SetCoalescer(c *kvstore.Coalescer) { s.coal = c }

// SetReplicator installs the replica fan-out hook; call before Serve.
// Successful stores and deletes are handed to it with the request's
// vbucket-carried ReplMode (ReplLocal frames are never re-replicated).
func (s *BinarySession) SetReplicator(r Replicator) { s.repl = r }

// SetObserver installs a per-op observer and the nanosecond clock used
// to time commands; call before Serve.
func (s *BinarySession) SetObserver(o Observer, nowNanos func() sim.Ns) {
	s.obs = o
	s.nowNanos = nowNanos
}

// SetFlight installs a sampled per-op span observer, as on
// Session.SetFlight. Spans use the observer clock from SetObserver.
func (s *BinarySession) SetFlight(f SpanObserver, every int) {
	s.flight = f
	if every < 1 {
		every = 1
	}
	s.flightEvery = uint64(every)
}

//kv3d:hotpath
func (s *BinarySession) beginSpan() {
	if s.flight == nil {
		return
	}
	n := s.flightSeq
	s.flightSeq++
	if n%s.flightEvery != 0 {
		return
	}
	s.spanActive = true
	s.tParse = 0
	s.tExec = 0
}

//kv3d:hotpath
func (s *BinarySession) markParse() {
	if s.spanActive && s.tParse == 0 {
		s.tParse = s.nowNanos()
	}
}

// markExec stamps the end of the store-execute phase; first call wins,
// so multi-frame responders (doStat) measure up to their first write.
//
//kv3d:hotpath
func (s *BinarySession) markExec() {
	if s.spanActive && s.tExec == 0 {
		s.tExec = s.nowNanos()
	}
}

//kv3d:hotpath
func (s *BinarySession) endSpan(class OpClass, out Outcome, opaque uint64, start, end sim.Ns) {
	if !s.spanActive {
		return
	}
	s.spanActive = false
	p, e := s.tParse, s.tExec
	if p == 0 {
		p = start
	}
	if e == 0 {
		e = p
	}
	s.flight.ObserveSpan(OpSpan{
		Start: start, ParseDone: p, ExecDone: e, End: end,
		Opaque: opaque, Class: class, Outcome: out,
	})
}

// NewBinarySession wraps a transport. The caller must already have
// consumed nothing from the stream (the magic byte is read here).
func NewBinarySession(store *kvstore.Store, rw io.ReadWriter) *BinarySession {
	return &BinarySession{
		store: store,
		r:     bufio.NewReaderSize(rw, 64<<10),
		w:     bufio.NewWriterSize(rw, 64<<10),
	}
}

// NewBinarySessionBuffered wraps pre-existing buffered I/O (used by the
// server after protocol sniffing).
func NewBinarySessionBuffered(store *kvstore.Store, r *bufio.Reader, w *bufio.Writer) *BinarySession {
	return &BinarySession{store: store, r: r, w: w}
}

// Serve processes frames until quit, EOF, or a transport error. As on
// the ASCII session, a failed final flush is reported, not swallowed.
func (s *BinarySession) Serve() error {
	// Staged frames hold gate slots across serveOne calls; an abnormal
	// exit (transport error mid-run) must hand them back or the server's
	// in-flight budget leaks with the dead connection.
	defer s.releaseStagedGate()
	for {
		err := s.serveOne()
		switch {
		case err == nil:
			continue
		case errors.Is(err, ErrQuit), errors.Is(err, io.EOF):
			return s.w.Flush()
		default:
			return errors.Join(err, s.w.Flush())
		}
	}
}

func (s *BinarySession) releaseStagedGate() {
	for s.stagedGate > 0 {
		s.gate.Release()
		s.stagedGate--
	}
}

// serveOne reads and executes one binary frame.
//
//kv3d:hotpath
func (s *BinarySession) serveOne() error {
	var hdr [binHeaderLen]byte
	if _, err := io.ReadFull(s.r, hdr[:]); err != nil {
		if errors.Is(err, io.ErrUnexpectedEOF) {
			return io.EOF
		}
		return err
	}
	h := parseBinHeader(hdr[:])
	// The op clock starts after the (possibly idle) blocking header
	// read, so the parse phase covers body read and field split but not
	// time spent waiting for a request to arrive.
	timed := s.obs != nil && s.nowNanos != nil
	var start sim.Ns
	if timed {
		start = s.nowNanos()
	}
	if h.magic != MagicRequest {
		return fmt.Errorf("protocol: bad binary magic %#02x", h.magic)
	}
	if h.bodyLen > maxBinaryBody {
		return fmt.Errorf("protocol: binary body %d exceeds limit", h.bodyLen)
	}
	if int(h.extrasLen)+int(h.keyLen) > int(h.bodyLen) {
		return fmt.Errorf("protocol: binary frame lengths inconsistent")
	}
	if cap(s.body) < int(h.bodyLen) {
		s.body = make([]byte, h.bodyLen)
	}
	body := s.body[:h.bodyLen]
	if _, err := io.ReadFull(s.r, body); err != nil {
		return err
	}
	extras := body[:h.extrasLen]
	keyB := body[h.extrasLen : int(h.extrasLen)+int(h.keyLen)]
	value := body[int(h.extrasLen)+int(h.keyLen):]

	// Batched mode: get-family frames are staged into a run that
	// executes as one coalesced round; anything else flushes the pending
	// run first so responses keep request order. Staged gets skip the
	// per-frame key-string allocation entirely — their keys are arena
	// bytes all the way into the store.
	if s.coal != nil {
		if isGetFamily(h.opcode) {
			return s.stageGet(h, keyB, start, timed)
		}
		if len(s.staged) > 0 {
			if err := s.flushGetRun(); err != nil {
				return err
			}
		}
	}

	key := string(keyB) //nolint:kv3d -- binary keys cross into the string-keyed store mutation API; one short per-frame allocation is accepted
	if timed {
		s.beginSpan()
		s.markParse()
	}

	// The frame (header and body) has been fully consumed, so a busy
	// refusal here cannot desynchronize the stream. Quiet variants are
	// shed silently; quit still quits. Shed frames are observed with
	// OutcomeBusy so refusals stay visible in latency accounting.
	if s.gate != nil && !s.gate.TryAcquire() {
		var shedErr error
		quitting := false
		switch {
		case h.opcode == OpQuit:
			shedErr = s.respond(h, StatusOK, nil, "", nil, 0)
			quitting = true
		case h.opcode == OpQuitQ:
			quitting = true
		case quiet(h.opcode):
			// silent shed
		default:
			shedErr = s.respond(h, StatusBusy, nil, "", []byte("busy"), 0)
		}
		if timed {
			end := s.nowNanos()
			class := classifyOpcode(h.opcode)
			s.obs.ObserveOp(class, OutcomeBusy, end-start)
			s.endSpan(class, OutcomeBusy, uint64(h.opaque), start, end)
		}
		if quitting {
			// The session ends either way; ErrQuit carries the outcome
			// even if the farewell respond failed.
			return ErrQuit
		}
		return shedErr
	}

	if timed {
		err := s.dispatch(h, extras, key, value)
		end := s.nowNanos()
		class := classifyOpcode(h.opcode)
		out := outcomeOf(err)
		s.obs.ObserveOp(class, out, end-start)
		s.endSpan(class, out, uint64(h.opaque), start, end)
		if s.gate != nil {
			s.gate.Release()
		}
		return err
	}
	err := s.dispatch(h, extras, key, value)
	if s.gate != nil {
		s.gate.Release()
	}
	return err
}

// dispatch executes one parsed frame.
func (s *BinarySession) dispatch(h binHeader, extras []byte, key string, value []byte) error {
	switch h.opcode {
	case OpGet, OpGetQ, OpGetK, OpGetKQ:
		return s.doGet(h, key)
	case OpSet, OpSetQ, OpAdd, OpAddQ, OpReplace, OpReplaceQ:
		return s.doStore(h, extras, key, value)
	case OpAppend, OpAppendQ, OpPrepend, OpPrependQ:
		return s.doConcat(h, key, value)
	case OpDelete, OpDeleteQ:
		return s.doDelete(h, key)
	case OpIncr, OpIncrQ, OpDecr, OpDecrQ:
		return s.doIncrDecr(h, extras, key)
	case OpTouch:
		return s.doTouch(h, extras, key)
	case OpFlush, OpFlushQ:
		return s.doFlush(h, extras)
	case OpNoop:
		return s.respond(h, StatusOK, nil, "", nil, 0)
	case OpVersion:
		return s.respond(h, StatusOK, nil, "", []byte(Version), 0)
	case OpStat:
		return s.doStat(h)
	case OpQuit:
		s.respond(h, StatusOK, nil, "", nil, 0)
		return ErrQuit
	case OpQuitQ:
		return ErrQuit
	default:
		return s.respond(h, StatusUnknownCommand, nil, "", []byte("Unknown command"), 0)
	}
}

// isGetFamily reports whether the opcode is a lookup that can join a
// staged get run.
func isGetFamily(op byte) bool {
	return op == OpGet || op == OpGetQ || op == OpGetK || op == OpGetKQ
}

var binNotFound = []byte("Not found")

// stageGet queues one admitted get-family frame into the current run.
// The run executes — one coalesced shard-ordered round — as soon as the
// input buffer has no complete header left (nothing more to merge
// without blocking), the run hits its cap, or a non-get frame arrives.
//
//kv3d:hotpath
func (s *BinarySession) stageGet(h binHeader, key []byte, start sim.Ns, timed bool) error {
	if s.gate != nil && !s.gate.TryAcquire() {
		// The refusal answers in request order: everything staged before
		// this frame responds first.
		if err := s.flushGetRun(); err != nil {
			return err
		}
		var shedErr error
		if !quiet(h.opcode) {
			shedErr = s.respond(h, StatusBusy, nil, "", []byte("busy"), 0)
		}
		if timed {
			end := s.nowNanos()
			class := classifyOpcode(h.opcode)
			s.obs.ObserveOp(class, OutcomeBusy, end-start)
		}
		return shedErr
	}
	if s.gate != nil {
		s.stagedGate++
	}
	off := len(s.keyArena)
	s.keyArena = append(s.keyArena, key...) // key aliases the reused body buffer; the arena copy outlives this frame
	s.staged = append(s.staged, stagedGet{h: h, keyOff: off, keyLen: len(key)})
	s.stagedStart = append(s.stagedStart, start)
	if s.r.Buffered() >= binHeaderLen && len(s.staged) < maxStagedRun {
		return nil
	}
	return s.flushGetRun()
}

// flushGetRun executes the staged run as one coalescer round and emits
// every response in request order (quiet misses stay silent), then
// flushes once. Byte content is identical to the per-op path; only the
// store-call grouping and syscall segmentation differ.
//
//kv3d:hotpath
func (s *BinarySession) flushGetRun() error {
	if len(s.staged) == 0 {
		return nil
	}
	keys := s.stagedKeys[:0]
	for _, g := range s.staged {
		keys = append(keys, s.keyArena[g.keyOff:g.keyOff+g.keyLen]) //nolint:kv3d -- arena self-alias: both the spans and the arena are this session's scratch, released together below
	}
	s.stagedKeys = keys
	s.coal.Gets(&s.getJob, keys)
	timed := s.obs != nil && s.nowNanos != nil
	var firstErr error
	for i, g := range s.staged {
		v, r := s.getJob.Result(i)
		var err error
		switch {
		case !r.Found && quiet(g.h.opcode):
			// getq/getkq: silent miss keeps the pipeline quiet.
		case !r.Found:
			err = s.writeResponse(g.h, StatusKeyNotFound, nil, nil, binNotFound, 0)
		default:
			var extras [4]byte
			binary.BigEndian.PutUint32(extras[:], r.Flags)
			var respKey []byte
			if g.h.opcode == OpGetK || g.h.opcode == OpGetKQ {
				respKey = keys[i]
			}
			err = s.writeResponse(g.h, StatusOK, extras[:], respKey, v, r.CAS)
		}
		if err != nil && firstErr == nil {
			firstErr = err
		}
		if timed && s.stagedStart[i] != 0 {
			// Deferred observation: latency includes the staging wait,
			// which is the honest client-visible number. Staged gets are
			// not flight-sampled per op — the batch round itself is traced
			// by the server's coalescer hook instead.
			end := s.nowNanos()
			s.obs.ObserveOp(classifyOpcode(g.h.opcode), outcomeOf(err), end-s.stagedStart[i])
		}
	}
	s.getJob.Release()
	s.releaseStagedGate()
	s.staged = s.staged[:0]
	s.stagedKeys = s.stagedKeys[:0]
	s.keyArena = s.keyArena[:0]
	s.stagedStart = s.stagedStart[:0]
	if firstErr != nil {
		return firstErr
	}
	return s.maybeFlush()
}

// maybeFlush defers the response flush while at least one more complete
// header is already buffered, exactly as Session.maybeFlush does for
// ASCII lines; per-op mode always flushes.
//
//kv3d:hotpath
func (s *BinarySession) maybeFlush() error {
	if s.coal != nil && s.r.Buffered() >= binHeaderLen {
		return nil
	}
	return s.w.Flush()
}

// quiet reports whether the opcode is a quiet variant (success responses
// suppressed; for getq, miss responses suppressed).
func quiet(op byte) bool {
	switch op {
	case OpGetQ, OpGetKQ, OpSetQ, OpAddQ, OpReplaceQ, OpDeleteQ,
		OpIncrQ, OpDecrQ, OpQuitQ, OpFlushQ, OpAppendQ, OpPrependQ:
		return true
	}
	return false
}

// respond writes one response frame and flushes (batched mode: defers
// the flush while more input is buffered). Its entry marks the end of
// the store-execute phase for sampled spans (first response wins).
func (s *BinarySession) respond(h binHeader, status uint16, extras []byte, key string, value []byte, cas uint64) error {
	s.markExec()
	var hdr [binHeaderLen]byte
	hdr[0] = MagicResponse
	hdr[1] = h.opcode
	binary.BigEndian.PutUint16(hdr[2:], uint16(len(key)))
	hdr[4] = byte(len(extras))
	binary.BigEndian.PutUint16(hdr[6:], status)
	binary.BigEndian.PutUint32(hdr[8:], uint32(len(extras)+len(key)+len(value)))
	binary.BigEndian.PutUint32(hdr[12:], h.opaque)
	binary.BigEndian.PutUint64(hdr[16:], cas)
	if _, err := s.w.Write(hdr[:]); err != nil {
		return err
	}
	if len(extras) > 0 {
		s.w.Write(extras)
	}
	if len(key) > 0 {
		s.w.WriteString(key)
	}
	if len(value) > 0 {
		s.w.Write(value)
	}
	return s.maybeFlush()
}

// writeResponse is respond's staged-run variant: byte-slice key, no
// flush (the run flushes once at its end). The emitted frame bytes are
// identical to respond's.
//
//kv3d:hotpath
func (s *BinarySession) writeResponse(h binHeader, status uint16, extras, key, value []byte, cas uint64) error {
	var hdr [binHeaderLen]byte
	hdr[0] = MagicResponse
	hdr[1] = h.opcode
	binary.BigEndian.PutUint16(hdr[2:], uint16(len(key)))
	hdr[4] = byte(len(extras))
	binary.BigEndian.PutUint16(hdr[6:], status)
	binary.BigEndian.PutUint32(hdr[8:], uint32(len(extras)+len(key)+len(value)))
	binary.BigEndian.PutUint32(hdr[12:], h.opaque)
	binary.BigEndian.PutUint64(hdr[16:], cas)
	if _, err := s.w.Write(hdr[:]); err != nil {
		return err
	}
	if len(extras) > 0 {
		s.w.Write(extras)
	}
	if len(key) > 0 {
		s.w.Write(key)
	}
	if len(value) > 0 {
		s.w.Write(value)
	}
	return nil
}

func (s *BinarySession) doGet(h binHeader, key string) error {
	withKey := h.opcode == OpGetK || h.opcode == OpGetKQ
	e, ok := s.store.Get(key)
	if !ok {
		if quiet(h.opcode) {
			return nil // getq: silent miss
		}
		return s.respond(h, StatusKeyNotFound, nil, "", []byte("Not found"), 0)
	}
	var extras [4]byte
	binary.BigEndian.PutUint32(extras[:], e.Flags)
	respKey := ""
	if withKey {
		respKey = key
	}
	return s.respond(h, StatusOK, extras[:], respKey, e.Value, e.CAS)
}

func (s *BinarySession) doStore(h binHeader, extras []byte, key string, value []byte) error {
	if len(extras) != 8 {
		return s.respond(h, StatusInvalidArgs, nil, "", []byte("Invalid arguments"), 0)
	}
	flags := binary.BigEndian.Uint32(extras)
	exptime := int64(int32(binary.BigEndian.Uint32(extras[4:])))
	var err error
	switch {
	case s.coal != nil && (h.opcode == OpSet || h.opcode == OpSetQ) && h.cas == 0:
		// Batched mode: unconditional sets (the setq pipeline workload)
		// join the cross-connection set round. CAS and add/replace run
		// their guard under the shard lock, which SetBatch does not
		// model, so they stay on the direct path.
		s.setOps = append(s.setOps[:0], kvstore.SetOp{Key: key, Value: value, Flags: flags, Exptime: exptime})
		s.coal.Sets(&s.setJob, s.setOps)
		err = s.setJob.Err(0)
	default:
		switch h.opcode {
		case OpSet, OpSetQ:
			if h.cas != 0 {
				err = s.store.CAS(key, value, flags, exptime, h.cas)
			} else {
				err = s.store.Set(key, value, flags, exptime)
			}
		case OpAdd, OpAddQ:
			err = s.store.Add(key, value, flags, exptime)
		case OpReplace, OpReplaceQ:
			err = s.store.Replace(key, value, flags, exptime)
		}
	}
	if err != nil {
		return s.respond(h, storeStatus(err), nil, "", []byte(err.Error()), 0)
	}
	// Replica fan-out after the local store succeeds. CAS and add/replace
	// variants all propagate as plain sets: replicas converge on the
	// winning value (last-writer-wins), they do not re-run the guard. A
	// quorum shortfall is reported even on quiet opcodes — the client
	// asked for an acknowledgement guarantee, so silence would lie.
	if s.repl != nil {
		if mode := ReplModeFromVbucket(h.status); mode != ReplLocal {
			if rerr := s.repl.ReplicateSet(key, value, flags, exptime, mode); rerr != nil {
				return s.respond(h, StatusNoQuorum, nil, "", []byte(rerr.Error()), 0)
			}
		}
	}
	if quiet(h.opcode) {
		return nil
	}
	e, _ := s.store.Get(key)
	return s.respond(h, StatusOK, nil, "", nil, e.CAS)
}

func (s *BinarySession) doConcat(h binHeader, key string, value []byte) error {
	var err error
	if h.opcode == OpAppend || h.opcode == OpAppendQ {
		err = s.store.Append(key, value)
	} else {
		err = s.store.Prepend(key, value)
	}
	if err != nil {
		return s.respond(h, storeStatus(err), nil, "", []byte(err.Error()), 0)
	}
	if quiet(h.opcode) {
		return nil
	}
	return s.respond(h, StatusOK, nil, "", nil, 0)
}

func (s *BinarySession) doDelete(h binHeader, key string) error {
	err := s.store.Delete(key)
	if err != nil {
		if quiet(h.opcode) {
			return nil
		}
		return s.respond(h, StatusKeyNotFound, nil, "", []byte("Not found"), 0)
	}
	if s.repl != nil {
		if mode := ReplModeFromVbucket(h.status); mode != ReplLocal {
			if rerr := s.repl.ReplicateDelete(key, mode); rerr != nil {
				return s.respond(h, StatusNoQuorum, nil, "", []byte(rerr.Error()), 0)
			}
		}
	}
	if quiet(h.opcode) {
		return nil
	}
	return s.respond(h, StatusOK, nil, "", nil, 0)
}

func (s *BinarySession) doIncrDecr(h binHeader, extras []byte, key string) error {
	if len(extras) != 20 {
		return s.respond(h, StatusInvalidArgs, nil, "", []byte("Invalid arguments"), 0)
	}
	delta := binary.BigEndian.Uint64(extras)
	initial := binary.BigEndian.Uint64(extras[8:])
	exptime := int64(int32(binary.BigEndian.Uint32(extras[16:])))
	incr := h.opcode == OpIncr || h.opcode == OpIncrQ

	var v uint64
	var err error
	if incr {
		v, err = s.store.Incr(key, delta)
	} else {
		v, err = s.store.Decr(key, delta)
	}
	if errors.Is(err, kvstore.ErrNotFound) {
		// Binary protocol: exptime 0xffffffff means "do not create".
		if uint32(exptime) == 0xffffffff {
			return s.respond(h, StatusKeyNotFound, nil, "", []byte("Not found"), 0)
		}
		v = initial
		err = s.store.Add(key, []byte(strconv.FormatUint(initial, 10)), 0, exptime)
	}
	if err != nil {
		return s.respond(h, storeStatus(err), nil, "", []byte(err.Error()), 0)
	}
	if quiet(h.opcode) {
		return nil
	}
	var out [8]byte
	binary.BigEndian.PutUint64(out[:], v)
	e, _ := s.store.Get(key)
	return s.respond(h, StatusOK, nil, "", out[:], e.CAS)
}

func (s *BinarySession) doTouch(h binHeader, extras []byte, key string) error {
	if len(extras) != 4 {
		return s.respond(h, StatusInvalidArgs, nil, "", []byte("Invalid arguments"), 0)
	}
	exptime := int64(int32(binary.BigEndian.Uint32(extras)))
	if err := s.store.Touch(key, exptime); err != nil {
		return s.respond(h, StatusKeyNotFound, nil, "", []byte("Not found"), 0)
	}
	// TTL updates fan out like sets; see Replicator.ReplicateTouch.
	if s.repl != nil {
		if mode := ReplModeFromVbucket(h.status); mode != ReplLocal {
			if rerr := s.repl.ReplicateTouch(key, exptime, mode); rerr != nil {
				return s.respond(h, StatusNoQuorum, nil, "", []byte(rerr.Error()), 0)
			}
		}
	}
	return s.respond(h, StatusOK, nil, "", nil, 0)
}

func (s *BinarySession) doFlush(h binHeader, extras []byte) error {
	// The optional extras are exactly one 32-bit delay. Anything else is
	// a malformed frame and must be refused — the previous behaviour of
	// silently flushing now turned a client framing bug into immediate
	// whole-cache loss. Error responses are sent even for flushq: quiet
	// suppresses success only.
	var delay int64
	switch len(extras) {
	case 0:
		// flush now
	case 4:
		delay = int64(binary.BigEndian.Uint32(extras))
	default:
		return s.respond(h, StatusInvalidArgs, nil, "", []byte("Invalid arguments"), 0)
	}
	s.store.FlushAll(delay)
	// flush_all reaches replicas too; see Replicator.ReplicateFlush.
	if s.repl != nil {
		if mode := ReplModeFromVbucket(h.status); mode != ReplLocal {
			if rerr := s.repl.ReplicateFlush(delay, mode); rerr != nil {
				return s.respond(h, StatusNoQuorum, nil, "", []byte(rerr.Error()), 0)
			}
		}
	}
	if quiet(h.opcode) {
		return nil
	}
	return s.respond(h, StatusOK, nil, "", nil, 0)
}

func (s *BinarySession) doStat(h binHeader) error {
	st := s.store.Stats()
	pairs := [][2]string{
		{"version", Version},
		{"curr_items", strconv.FormatUint(st.CurrItems, 10)},
		{"total_items", strconv.FormatUint(st.TotalItems, 10)},
		{"get_hits", strconv.FormatUint(st.GetHits, 10)},
		{"get_misses", strconv.FormatUint(st.GetMisses, 10)},
		{"cmd_set", strconv.FormatUint(st.Sets, 10)},
		{"evictions", strconv.FormatUint(st.Evictions, 10)},
		{"bytes", strconv.FormatInt(st.BytesUsed, 10)},
	}
	for _, p := range pairs {
		if err := s.respond(h, StatusOK, nil, p[0], []byte(p[1]), 0); err != nil {
			return err
		}
	}
	// Terminating empty stat.
	return s.respond(h, StatusOK, nil, "", nil, 0)
}

func storeStatus(err error) uint16 {
	switch {
	case err == nil:
		return StatusOK
	case errors.Is(err, kvstore.ErrNotFound):
		return StatusKeyNotFound
	case errors.Is(err, kvstore.ErrExists):
		return StatusKeyExists
	case errors.Is(err, kvstore.ErrTooLarge):
		return StatusValueTooLarge
	case errors.Is(err, kvstore.ErrNotStored):
		return StatusNotStored
	case errors.Is(err, kvstore.ErrNotNumeric):
		return StatusNonNumeric
	case errors.Is(err, kvstore.ErrOutOfMemory):
		return StatusOutOfMemory
	case errors.Is(err, kvstore.ErrBadKey):
		return StatusInvalidArgs
	default:
		return StatusUnknownCommand
	}
}
