package protocol

// Regression and equivalence tests for the PR-10 batched datapath and
// its satellite bugfixes: negative exptime means "already expired" on
// both wire protocols, binary flush validates its extras, touch and
// flush_all replicate, and — the big one — the event-loop batched
// session emits byte-identical output to the per-op session for any
// request stream, because only flush segmentation changed.

import (
	"bytes"
	"encoding/binary"
	"errors"
	"strings"
	"testing"

	"kv3d/internal/kvstore"
)

// newClockStore builds a store whose clock is frozen at now — negative
// exptime regressions only bite at sim-time zero, where the buggy
// "expired = absolute 1" encoding still compared as live.
func newClockStore(t *testing.T, now int64) *kvstore.Store {
	t.Helper()
	cfg := kvstore.DefaultConfig(16 << 20)
	cfg.Clock = func() int64 { return now }
	st, err := kvstore.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// touchExtras is the 4-byte big-endian exptime extras of OpTouch/OpFlush.
func touchExtras(exptime uint32) []byte {
	e := make([]byte, 4)
	binary.BigEndian.PutUint32(e, exptime)
	return e
}

// TestASCIINegativeExptime: storing or touching with a negative exptime
// must make the item immediately invisible, even at sim-time zero.
// Pre-fix, negative exptimes were encoded as absolute time 1, which an
// injected clock still at 0 considered live.
func TestASCIINegativeExptime(t *testing.T) {
	st := newClockStore(t, 0)
	out := run(t, st,
		"set k 0 -1 1\r\nx\r\n"+
			"get k\r\n"+
			"set j 0 0 1\r\ny\r\n"+
			"touch j -1\r\n"+
			"get j\r\n")
	want := "STORED\r\nEND\r\nSTORED\r\nTOUCHED\r\nEND\r\n"
	if out != want {
		t.Fatalf("out = %q, want %q", out, want)
	}
}

// TestBinaryNegativeExptime: the binary exptime field is decoded as a
// signed 32-bit value, so 0xffffffff arrives as -1 and must expire the
// item immediately — on stores and on touch.
func TestBinaryNegativeExptime(t *testing.T) {
	st := newClockStore(t, 0)
	rs := runBinary(t, st,
		frame(OpSet, "k", setExtras(0, 0xffffffff), []byte("x"), 0, 1),
		frame(OpGet, "k", nil, nil, 0, 2),
		frame(OpSet, "j", setExtras(0, 0), []byte("y"), 0, 3),
		frame(OpTouch, "j", touchExtras(0xffffffff), nil, 0, 4),
		frame(OpGet, "j", nil, nil, 0, 5),
	)
	if len(rs) != 5 {
		t.Fatalf("got %d responses, want 5", len(rs))
	}
	if rs[0].status != StatusOK || rs[2].status != StatusOK || rs[3].status != StatusOK {
		t.Fatalf("writes failed: %+v", rs)
	}
	if rs[1].status != StatusKeyNotFound {
		t.Fatalf("get after negative-exptime set = %+v, want KeyNotFound", rs[1])
	}
	if rs[4].status != StatusKeyNotFound {
		t.Fatalf("get after negative-exptime touch = %+v, want KeyNotFound", rs[4])
	}
}

// TestBinaryFlushExtras: flush must honor a 4-byte delay, accept no
// extras, and reject every other extras length with StatusInvalidArgs —
// including on the quiet opcode, where silence would hide the error.
// Pre-fix, a 2-byte extras field was silently treated as "flush now",
// turning a client framing bug into whole-cache loss.
func TestBinaryFlushExtras(t *testing.T) {
	now := int64(1000)
	cfg := kvstore.DefaultConfig(16 << 20)
	cfg.Clock = func() int64 { return now }
	st, err := kvstore.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rs := runBinary(t, st,
		frame(OpSet, "k", setExtras(0, 0), []byte("v"), 0, 1),
		frame(OpFlush, "", touchExtras(100), nil, 0, 2), // delayed: fires at 1100, clock is 1000
		frame(OpGet, "k", nil, nil, 0, 3),               // still visible
		frame(OpFlush, "", []byte{0, 1}, nil, 0, 4),     // 2-byte extras: reject
		frame(OpFlushQ, "", []byte{1, 2, 3}, nil, 0, 5), // quiet + bad extras: still responds
		frame(OpGet, "k", nil, nil, 0, 6),               // rejected flushes had no effect
	)
	if len(rs) != 6 {
		t.Fatalf("got %d responses, want 6 (bad quiet flush must respond)", len(rs))
	}
	if rs[1].status != StatusOK {
		t.Fatalf("delayed flush: %+v", rs[1])
	}
	if rs[2].status != StatusOK || string(rs[2].value) != "v" {
		t.Fatalf("get during pending delayed flush = %+v, want hit", rs[2])
	}
	if rs[3].status != StatusInvalidArgs || rs[3].opaque != 4 {
		t.Fatalf("2-byte flush extras = %+v, want StatusInvalidArgs", rs[3])
	}
	if rs[4].status != StatusInvalidArgs || rs[4].opaque != 5 {
		t.Fatalf("quiet flush with bad extras = %+v, want StatusInvalidArgs response", rs[4])
	}
	if rs[5].status != StatusOK {
		t.Fatalf("get after rejected flushes = %+v, want hit", rs[5])
	}
	// The delay must have been parsed as exactly 100: the key survives
	// at 1099 and is gone at 1100. Pre-fix behavior (treating a framing
	// mismatch as "flush now") would already have killed it above.
	now = 1099
	rs = runBinary(t, st, frame(OpGet, "k", nil, nil, 0, 7))
	if len(rs) != 1 || rs[0].status != StatusOK {
		t.Fatalf("get at epoch-1 = %+v, want hit", rs)
	}
	now = 1100
	rs = runBinary(t, st, frame(OpGet, "k", nil, nil, 0, 8))
	if len(rs) != 1 || rs[0].status != StatusKeyNotFound {
		t.Fatalf("get at flush epoch = %+v, want KeyNotFound", rs)
	}
}

// TestASCIITouchFlushReplicate: ASCII touch and flush_all must hand
// their mutation to the Replicator — pre-fix they silently skipped it,
// so replicas kept stale TTLs and flushed primaries diverged from
// unflushed replicas.
func TestASCIITouchFlushReplicate(t *testing.T) {
	rec := &recordingReplicator{}
	st := newStore(t)
	buf := &rwBuffer{in: bytes.NewReader([]byte(
		"set k 0 0 1\r\nv\r\n" +
			"touch k 300\r\n" +
			"touch missing 5\r\n" + // local NOT_FOUND: nothing to replicate
			"flush_all 60\r\n" +
			"flush_all\r\n"))}
	sess := NewSession(st, buf)
	sess.SetReplicator(rec)
	if err := sess.Serve(); err != nil {
		t.Fatalf("serve: %v", err)
	}
	if len(rec.touches) != 1 || rec.touches[0] != (replTouchRec{"k", 300, ReplDefault}) {
		t.Fatalf("replicated touches = %+v, want [{k 300 default}]", rec.touches)
	}
	if len(rec.flushes) != 2 ||
		rec.flushes[0] != (replFlushRec{60, ReplDefault}) ||
		rec.flushes[1] != (replFlushRec{0, ReplDefault}) {
		t.Fatalf("replicated flushes = %+v, want delays [60 0]", rec.flushes)
	}
}

// TestASCIITouchFlushReplicationFailure: a failed fan-out surfaces as
// SERVER_ERROR rather than acknowledging a write the replicas missed.
func TestASCIITouchFlushReplicationFailure(t *testing.T) {
	rec := &recordingReplicator{fail: errors.New("no quorum")}
	st := newStore(t)
	if err := st.Set("k", []byte("v"), 0, 0); err != nil {
		t.Fatal(err)
	}
	buf := &rwBuffer{in: bytes.NewReader([]byte("touch k 300\r\nflush_all\r\n"))}
	sess := NewSession(st, buf)
	sess.SetReplicator(rec)
	if err := sess.Serve(); err != nil {
		t.Fatalf("serve: %v", err)
	}
	lines := strings.Split(strings.TrimRight(buf.out.String(), "\r\n"), "\r\n")
	if len(lines) != 2 ||
		!strings.HasPrefix(lines[0], "SERVER_ERROR") ||
		!strings.HasPrefix(lines[1], "SERVER_ERROR") {
		t.Fatalf("out = %q, want two SERVER_ERROR lines", buf.out.String())
	}
}

// TestBinaryTouchFlushReplicate: binary touch and flush replicate with
// the vbucket-selected mode; ReplLocal frames (replica-applied writes)
// are never re-replicated, and a failed fan-out is StatusNoQuorum.
func TestBinaryTouchFlushReplicate(t *testing.T) {
	rec := &recordingReplicator{}
	rs := runBinaryRepl(t, rec,
		frameVb(OpSet, "k", setExtras(0, 0), []byte("v"), uint16(ReplLocal), 1),
		frameVb(OpTouch, "k", touchExtras(120), nil, uint16(ReplQuorum), 2),
		frameVb(OpTouch, "k", touchExtras(60), nil, uint16(ReplLocal), 3),
		frameVb(OpFlush, "", touchExtras(30), nil, uint16(ReplAsync), 4),
		frameVb(OpFlush, "", nil, nil, uint16(ReplLocal), 5),
	)
	for i, r := range rs {
		if r.status != StatusOK {
			t.Fatalf("response %d: %+v", i, r)
		}
	}
	if len(rec.touches) != 1 || rec.touches[0] != (replTouchRec{"k", 120, ReplQuorum}) {
		t.Fatalf("replicated touches = %+v, want only the quorum touch", rec.touches)
	}
	if len(rec.flushes) != 1 || rec.flushes[0] != (replFlushRec{30, ReplAsync}) {
		t.Fatalf("replicated flushes = %+v, want only the async flush", rec.flushes)
	}
}

// TestBinaryTouchFlushQuorumShortfall: replication failure on touch and
// flush reports StatusNoQuorum instead of success.
func TestBinaryTouchFlushQuorumShortfall(t *testing.T) {
	rec := &recordingReplicator{fail: errors.New("1 of 3 acks")}
	st := newStore(t)
	if err := st.Set("k", []byte("v"), 0, 0); err != nil {
		t.Fatal(err)
	}
	var in bytes.Buffer
	in.Write(frameVb(OpTouch, "k", touchExtras(120), nil, uint16(ReplQuorum), 1))
	in.Write(frameVb(OpFlush, "", nil, nil, uint16(ReplQuorum), 2))
	buf := &rwBuffer{in: bytes.NewReader(in.Bytes())}
	sess := NewBinarySession(st, buf)
	sess.SetReplicator(rec)
	if err := sess.Serve(); err != nil {
		t.Fatalf("serve: %v", err)
	}
	rs := parseResponses(t, buf.out.Bytes())
	if len(rs) != 2 || rs[0].status != StatusNoQuorum || rs[1].status != StatusNoQuorum {
		t.Fatalf("responses = %+v, want two StatusNoQuorum", rs)
	}
}

// --- batched-vs-per-op byte identity ---------------------------------

// asciiCorpus exercises hits, misses, multigets, CAS, quiet (noreply)
// writes, arithmetic, deletes, touch, flush, and parse errors — every
// response class the batched path must reproduce byte for byte.
var asciiCorpus = "set a 7 0 5\r\nhello\r\n" +
	"set b 0 0 3 noreply\r\nxyz\r\n" +
	"get a\r\n" +
	"get a b missing\r\n" +
	"gets a b\r\n" +
	"get missing\r\n" +
	"add a 0 0 1\r\nz\r\n" + // NOT_STORED: a exists
	"append a 0 0 1\r\n!\r\n" +
	"get a\r\n" +
	"incr n 5\r\n" + // NOT_FOUND
	"set n 0 0 1\r\n1\r\n" +
	"incr n 41\r\n" +
	"delete b\r\n" +
	"delete b\r\n" + // NOT_FOUND
	"get b\r\n" +
	"bogus command\r\n" + // ERROR
	"touch a 300\r\n" +
	"set neg 0 -1 1\r\nx\r\n" +
	"get neg\r\n" +
	"flush_all\r\n" +
	"get a\r\n" +
	"verbosity 1\r\n" +
	"version\r\n"

// serveASCII runs the corpus through a fresh fixed-clock store, with or
// without the coalescer attached, and returns the raw response bytes.
func serveASCII(t *testing.T, input string, batched bool) []byte {
	t.Helper()
	st := newClockStore(t, 1000)
	buf := &rwBuffer{in: bytes.NewReader([]byte(input))}
	sess := NewSession(st, buf)
	if batched {
		sess.SetCoalescer(kvstore.NewCoalescer(st, kvstore.CoalescerOptions{}))
	}
	if err := sess.Serve(); err != nil {
		t.Fatalf("serve (batched=%v): %v", batched, err)
	}
	return buf.out.Bytes()
}

// TestASCIIBatchedByteIdentity: the batched session must emit exactly
// the bytes the per-op session emits — batching changes syscall
// segmentation, never content.
func TestASCIIBatchedByteIdentity(t *testing.T) {
	perOp := serveASCII(t, asciiCorpus, false)
	batched := serveASCII(t, asciiCorpus, true)
	if !bytes.Equal(perOp, batched) {
		t.Fatalf("batched ASCII output diverged:\nper-op:  %q\nbatched: %q", perOp, batched)
	}
	if len(perOp) == 0 {
		t.Fatal("corpus produced no output")
	}
}

// binaryCorpus builds a frame stream covering quiet gets (hit and
// miss), getk variants, staged-run interruption by writes, deletes,
// arithmetic, touch, flush validation errors, and unknown opcodes.
func binaryCorpus() []byte {
	var in bytes.Buffer
	add := func(f []byte) { in.Write(f) }
	add(frame(OpSet, "a", setExtras(7, 0), []byte("alpha"), 0, 1))
	add(frame(OpSetQ, "b", setExtras(0, 0), []byte("beta"), 0, 2))
	add(frame(OpGet, "a", nil, nil, 0, 3))
	add(frame(OpGetQ, "a", nil, nil, 0, 4))
	add(frame(OpGetQ, "missing", nil, nil, 0, 5)) // quiet miss: silent
	add(frame(OpGetK, "b", nil, nil, 0, 6))
	add(frame(OpGetKQ, "missing", nil, nil, 0, 7)) // quiet miss: silent
	add(frame(OpGetKQ, "a", nil, nil, 0, 8))
	// A write interrupts a staged get run: ordering must hold.
	add(frame(OpGetQ, "a", nil, nil, 0, 9))
	add(frame(OpSet, "a", setExtras(1, 0), []byte("alpha2"), 0, 10))
	add(frame(OpGet, "a", nil, nil, 0, 11))
	add(frame(OpDelete, "b", nil, nil, 0, 12))
	add(frame(OpDeleteQ, "b", nil, nil, 0, 13)) // quiet miss: must respond NotFound
	add(frame(OpGet, "b", nil, nil, 0, 14))
	add(frame(OpIncr, "n", incrExtras(5, 100, 0), nil, 0, 15))
	add(frame(OpTouch, "a", touchExtras(300), nil, 0, 16))
	add(frame(OpSet, "neg", setExtras(0, 0xffffffff), []byte("x"), 0, 17))
	add(frame(OpGet, "neg", nil, nil, 0, 18))
	add(frame(OpFlush, "", []byte{9, 9}, nil, 0, 19)) // bad extras: InvalidArgs
	add(frame(OpGet, "a", nil, nil, 0, 20))
	add(frame(0xEE, "", nil, nil, 0, 21)) // unknown opcode
	add(frame(OpNoop, "", nil, nil, 0, 22))
	// A long quiet-get run crosses the maxStagedRun boundary.
	for i := uint32(0); i < 300; i++ {
		op := byte(OpGetQ)
		if i%64 == 0 {
			op = OpGet
		}
		key := "a"
		if i%3 == 0 {
			key = "missing"
		}
		add(frame(op, key, nil, nil, 0, 1000+i))
	}
	add(frame(OpFlush, "", nil, nil, 0, 23))
	add(frame(OpGet, "a", nil, nil, 0, 24))
	add(frame(OpVersion, "", nil, nil, 0, 25))
	return in.Bytes()
}

func serveBinary(t *testing.T, input []byte, batched bool) []byte {
	t.Helper()
	st := newClockStore(t, 1000)
	buf := &rwBuffer{in: bytes.NewReader(input)}
	sess := NewBinarySession(st, buf)
	if batched {
		sess.SetCoalescer(kvstore.NewCoalescer(st, kvstore.CoalescerOptions{}))
	}
	if err := sess.Serve(); err != nil {
		t.Fatalf("serve (batched=%v): %v", batched, err)
	}
	return buf.out.Bytes()
}

// TestBinaryBatchedByteIdentity: same invariant on the binary protocol,
// where the batched path additionally stages get-family frames into
// coalesced runs — responses must still come back in request order with
// identical bytes, quiet misses staying silent.
func TestBinaryBatchedByteIdentity(t *testing.T) {
	corpus := binaryCorpus()
	perOp := serveBinary(t, corpus, false)
	batched := serveBinary(t, corpus, true)
	if !bytes.Equal(perOp, batched) {
		// Parse both so the failure shows which frame diverged.
		a := parseResponses(t, perOp)
		b := parseResponses(t, batched)
		n := len(a)
		if len(b) < n {
			n = len(b)
		}
		for i := 0; i < n; i++ {
			if a[i].opcode != b[i].opcode || a[i].status != b[i].status ||
				a[i].opaque != b[i].opaque || a[i].cas != b[i].cas ||
				!bytes.Equal(a[i].extras, b[i].extras) || a[i].key != b[i].key ||
				!bytes.Equal(a[i].value, b[i].value) {
				t.Fatalf("frame %d diverged: per-op %+v, batched %+v", i, a[i], b[i])
			}
		}
		t.Fatalf("batched binary output diverged: per-op %d frames / %d bytes, batched %d frames / %d bytes",
			len(a), len(perOp), len(b), len(batched))
	}
	if len(perOp) == 0 {
		t.Fatal("corpus produced no output")
	}
}

// TestBinaryBatchedCoalescerCounters sanity-checks that the batched
// session actually routed gets through the coalescer (the identity test
// would trivially pass if SetCoalescer were ignored).
func TestBinaryBatchedCoalescerCounters(t *testing.T) {
	st := newClockStore(t, 1000)
	coal := kvstore.NewCoalescer(st, kvstore.CoalescerOptions{})
	buf := &rwBuffer{in: bytes.NewReader(binaryCorpus())}
	sess := NewBinarySession(st, buf)
	sess.SetCoalescer(coal)
	if err := sess.Serve(); err != nil {
		t.Fatalf("serve: %v", err)
	}
	if coal.Rounds() == 0 || coal.Ops() == 0 {
		t.Fatalf("coalescer unused: rounds=%d ops=%d", coal.Rounds(), coal.Ops())
	}
	if coal.Ops() < 300 {
		t.Fatalf("expected the staged get run to flow through the coalescer, ops=%d", coal.Ops())
	}
}
