package protocol

import (
	"bytes"
	"testing"

	"kv3d/internal/kvstore"
)

// fuzzStore builds a small store for fuzz iterations.
func fuzzStore(tb testing.TB) *kvstore.Store {
	cfg := kvstore.DefaultConfig(4 << 20)
	cfg.Mode = kvstore.ModeGlobal
	st, err := kvstore.New(cfg)
	if err != nil {
		tb.Fatal(err)
	}
	return st
}

// FuzzASCIISession throws arbitrary bytes at the text-protocol session.
// The invariant: the session must never panic, and must terminate (the
// input is finite, so Serve must return).
func FuzzASCIISession(f *testing.F) {
	seeds := []string{
		"get k\r\n",
		"set k 0 0 5\r\nhello\r\nget k\r\n",
		"gets a b c\r\n",
		"add k 1 2 3\r\nabc\r\n",
		"cas k 0 0 1 99\r\nx\r\n",
		"delete k noreply\r\n",
		"incr n 5\r\n",
		"decr n 18446744073709551615\r\n",
		"touch k -1\r\n",
		"stats\r\nstats slabs\r\nstats settings\r\n",
		"flush_all 100\r\nversion\r\nverbosity 2\r\nquit\r\n",
		"set k 0 0 99999999999999999999\r\n",
		"set k 0 0 -1\r\n",
		"bogus command here\r\n",
		"\r\n\r\n\r\n",
		"set  0 0 0\r\n\r\n",
		"get " + string(bytes.Repeat([]byte("k"), 300)) + "\r\n",
		"set k 0 0 3\r\nab",            // truncated body
		"set k 0 0 3 noreply\r\nabcXX", // bad terminator
		"incr k notanumber extra words\r\n",
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		st := fuzzStore(t)
		buf := &rwBuffer{in: bytes.NewReader(data)}
		// Errors are fine; panics and hangs are not.
		_ = NewSession(st, buf).Serve()
	})
}

// FuzzBinarySession throws arbitrary bytes at the binary-protocol
// session with the same invariant.
func FuzzBinarySession(f *testing.F) {
	f.Add(frame(OpGet, "k", nil, nil, 0, 0))
	f.Add(frame(OpSet, "k", setExtras(1, 2), []byte("v"), 0, 9))
	f.Add(frame(OpIncr, "n", incrExtras(1, 5, 0), nil, 0, 0))
	f.Add(frame(OpStat, "", nil, nil, 0, 0))
	f.Add(frame(OpQuit, "", nil, nil, 0, 0))
	f.Add([]byte{0x80})                                          // truncated header
	f.Add(append(frame(OpGet, "k", nil, nil, 0, 0), 0xde, 0xad)) // trailing junk
	bad := frame(OpSet, "k", setExtras(0, 0), []byte("v"), 0, 0)
	bad[4] = 200 // extras longer than body
	f.Add(bad)
	huge := frame(OpGet, "k", nil, nil, 0, 0)
	huge[8], huge[9], huge[10], huge[11] = 0xff, 0xff, 0xff, 0xff
	f.Add(huge)
	f.Fuzz(func(t *testing.T, data []byte) {
		st := fuzzStore(t)
		buf := &rwBuffer{in: bytes.NewReader(data)}
		_ = NewBinarySession(st, buf).Serve()
	})
}

// FuzzASCIIRoundTrip checks a semantic invariant: for any key/value the
// store accepts, a set-then-get over the wire returns the exact bytes.
func FuzzASCIIRoundTrip(f *testing.F) {
	f.Add("key", []byte("value"))
	f.Add("k", []byte{})
	f.Add("binary", []byte{0, 1, 2, '\r', '\n', 0xff})
	f.Fuzz(func(t *testing.T, key string, value []byte) {
		st := fuzzStore(t)
		if st.Set(key, value, 0, 0) != nil {
			t.Skip() // store rejected the key/value; not a protocol case
		}
		input := "get " + key + "\r\n"
		buf := &rwBuffer{in: bytes.NewReader([]byte(input))}
		if err := NewSession(st, buf).Serve(); err != nil {
			t.Fatalf("serve: %v", err)
		}
		out := buf.out.Bytes()
		if !bytes.Contains(out, value) {
			t.Fatalf("value lost: key=%q value=%q out=%q", key, value, out)
		}
		if !bytes.HasSuffix(out, []byte("END\r\n")) {
			t.Fatalf("missing END: %q", out)
		}
	})
}
