package protocol

import (
	"bytes"
	"encoding/binary"
	"testing"

	"kv3d/internal/kvstore"
)

// fuzzStore builds a small store for fuzz iterations.
func fuzzStore(tb testing.TB) *kvstore.Store {
	cfg := kvstore.DefaultConfig(4 << 20)
	cfg.Mode = kvstore.ModeGlobal
	st, err := kvstore.New(cfg)
	if err != nil {
		tb.Fatal(err)
	}
	return st
}

// FuzzASCIISession throws arbitrary bytes at the text-protocol session.
// The invariant: the session must never panic, and must terminate (the
// input is finite, so Serve must return).
func FuzzASCIISession(f *testing.F) {
	seeds := []string{
		"get k\r\n",
		"set k 0 0 5\r\nhello\r\nget k\r\n",
		"gets a b c\r\n",
		"add k 1 2 3\r\nabc\r\n",
		"cas k 0 0 1 99\r\nx\r\n",
		"delete k noreply\r\n",
		"incr n 5\r\n",
		"decr n 18446744073709551615\r\n",
		"touch k -1\r\n",
		"stats\r\nstats slabs\r\nstats settings\r\n",
		"flush_all 100\r\nversion\r\nverbosity 2\r\nquit\r\n",
		"set k 0 0 99999999999999999999\r\n",
		"set k 0 0 -1\r\n",
		"bogus command here\r\n",
		"\r\n\r\n\r\n",
		"set  0 0 0\r\n\r\n",
		"get " + string(bytes.Repeat([]byte("k"), 300)) + "\r\n",
		"set k 0 0 3\r\nab",            // truncated body
		"set k 0 0 3 noreply\r\nabcXX", // bad terminator
		"incr k notanumber extra words\r\n",
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		st := fuzzStore(t)
		buf := &rwBuffer{in: bytes.NewReader(data)}
		// Errors are fine; panics and hangs are not.
		_ = NewSession(st, buf).Serve()
	})
}

// FuzzSessionBinary throws arbitrary bytes at the binary-protocol
// session: it must never panic, and must terminate on finite input.
// (Named so that CI's -fuzz=FuzzBinary selects only the framer target.)
func FuzzSessionBinary(f *testing.F) {
	f.Add(frame(OpGet, "k", nil, nil, 0, 0))
	f.Add(frame(OpSet, "k", setExtras(1, 2), []byte("v"), 0, 9))
	f.Add(frame(OpIncr, "n", incrExtras(1, 5, 0), nil, 0, 0))
	f.Add(frame(OpStat, "", nil, nil, 0, 0))
	f.Add(frame(OpQuit, "", nil, nil, 0, 0))
	f.Add(frame(OpFlush, "", []byte{0, 0, 0, 30}, nil, 0, 0))
	f.Add(frame(OpFlushQ, "", []byte{0, 30}, nil, 0, 0))
	f.Add([]byte{0x80})                                          // truncated header
	f.Add(append(frame(OpGet, "k", nil, nil, 0, 0), 0xde, 0xad)) // trailing junk
	bad := frame(OpSet, "k", setExtras(0, 0), []byte("v"), 0, 0)
	bad[4] = 200 // extras longer than body
	f.Add(bad)
	huge := frame(OpGet, "k", nil, nil, 0, 0)
	huge[8], huge[9], huge[10], huge[11] = 0xff, 0xff, 0xff, 0xff
	f.Add(huge)
	f.Fuzz(func(t *testing.T, data []byte) {
		st := fuzzStore(t)
		buf := &rwBuffer{in: bytes.NewReader(data)}
		_ = NewBinarySession(st, buf).Serve()
	})
}

// FuzzASCIIRoundTrip checks a semantic invariant: for any key/value the
// store accepts, a set-then-get over the wire returns the exact bytes.
func FuzzASCIIRoundTrip(f *testing.F) {
	f.Add("key", []byte("value"))
	f.Add("k", []byte{})
	f.Add("binary", []byte{0, 1, 2, '\r', '\n', 0xff})
	f.Fuzz(func(t *testing.T, key string, value []byte) {
		st := fuzzStore(t)
		if st.Set(key, value, 0, 0) != nil {
			t.Skip() // store rejected the key/value; not a protocol case
		}
		input := "get " + key + "\r\n"
		buf := &rwBuffer{in: bytes.NewReader([]byte(input))}
		if err := NewSession(st, buf).Serve(); err != nil {
			t.Fatalf("serve: %v", err)
		}
		out := buf.out.Bytes()
		if !bytes.Contains(out, value) {
			t.Fatalf("value lost: key=%q value=%q out=%q", key, value, out)
		}
		if !bytes.HasSuffix(out, []byte("END\r\n")) {
			t.Fatalf("missing END: %q", out)
		}
	})
}

// FuzzBinaryFramer targets the binary framing layer: header decode
// must be an exact inverse of the wire encoding, and the frame-length
// validation must reject inconsistent frames instead of mis-slicing.
func FuzzBinaryFramer(f *testing.F) {
	// Golden requests seed the corpus.
	f.Add(frame(OpGet, "k", nil, nil, 0, 0))
	f.Add(frame(OpSet, "key", setExtras(7, 60), []byte("value"), 1, 42))
	f.Add(frame(OpIncr, "n", incrExtras(1, 5, 0), nil, 0, 0))
	f.Add(frame(OpDelete, "gone", nil, nil, 3, 9))
	f.Add(frame(OpQuit, "", nil, nil, 0, 0))
	// Flush extras: absent, a well-formed 4-byte delay, and the
	// malformed lengths the session must reject with StatusInvalidArgs
	// rather than misread as "flush now".
	f.Add(frame(OpFlush, "", nil, nil, 0, 0))
	f.Add(frame(OpFlush, "", []byte{0, 0, 0, 30}, nil, 0, 0))
	f.Add(frame(OpFlush, "", []byte{0, 30}, nil, 0, 0))
	f.Add(frame(OpFlushQ, "", []byte{1, 2, 3, 4, 5}, nil, 0, 0))
	f.Add([]byte{0x81, 0, 0, 0})              // response magic, truncated
	bad := frame(OpSet, "k", setExtras(0, 0), []byte("v"), 0, 0)
	bad[4] = 200 // extras longer than body
	f.Add(bad)
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < binHeaderLen {
			t.Skip()
		}
		h := parseBinHeader(data)

		// Re-encoding the decoded header must reproduce the input bytes
		// (byte 5 is the data-type field, carried through undecoded).
		var enc [binHeaderLen]byte
		enc[0], enc[1] = h.magic, h.opcode
		binary.BigEndian.PutUint16(enc[2:], h.keyLen)
		enc[4], enc[5] = h.extrasLen, data[5]
		binary.BigEndian.PutUint16(enc[6:], h.status)
		binary.BigEndian.PutUint32(enc[8:], h.bodyLen)
		binary.BigEndian.PutUint32(enc[12:], h.opaque)
		binary.BigEndian.PutUint64(enc[16:], h.cas)
		if !bytes.Equal(enc[:], data[:binHeaderLen]) {
			t.Fatalf("header decode is lossy: in=%x re-encoded=%x", data[:binHeaderLen], enc)
		}

		// Frame validation: the session must refuse frames whose declared
		// lengths are inconsistent or whose magic is wrong, and must not
		// panic regardless.
		st := fuzzStore(t)
		buf := &rwBuffer{in: bytes.NewReader(data)}
		err := NewBinarySession(st, buf).Serve()
		if h.magic != MagicRequest && err == nil {
			t.Fatalf("session accepted magic %#02x", h.magic)
		}
		if h.magic == MagicRequest && int(h.extrasLen)+int(h.keyLen) > int(h.bodyLen) && err == nil {
			t.Fatalf("session accepted inconsistent lengths: extras=%d key=%d body=%d",
				h.extrasLen, h.keyLen, h.bodyLen)
		}
	})
}

// FuzzUDPFrame targets the UDP request parser: short datagrams and
// fragmented requests must be rejected; accepted datagrams must echo
// the request id and alias the payload exactly.
func FuzzUDPFrame(f *testing.F) {
	// Golden request: one well-formed framed GET.
	well := make([]byte, UDPHeaderLen+len("get k\r\n"))
	PutUDPHeader(well, 0x1234, 0, 1)
	copy(well[UDPHeaderLen:], "get k\r\n")
	f.Add(well)
	empty := make([]byte, UDPHeaderLen)
	PutUDPHeader(empty, 1, 0, 1)
	f.Add(empty)                                             // header only, empty payload
	f.Add([]byte{1, 2, 3})                                   // shorter than the header
	f.Add([]byte{0, 1, 0, 5, 0, 9, 0, 0, 'g', 'x'})          // fragmented request
	f.Add([]byte{0, 1, 0, 0, 0, 2, 0, 0, 'g', 'e', 't', 13}) // count > 1
	f.Fuzz(func(t *testing.T, data []byte) {
		reqID, payload, err := ParseUDPRequest(data)
		if err != nil {
			if len(data) >= UDPHeaderLen &&
				binary.BigEndian.Uint16(data[2:]) == 0 &&
				binary.BigEndian.Uint16(data[4:]) <= 1 {
				t.Fatalf("rejected a well-formed datagram: %v", err)
			}
			return
		}
		if len(data) < UDPHeaderLen {
			t.Fatal("accepted a datagram shorter than the frame header")
		}
		if seq := binary.BigEndian.Uint16(data[2:]); seq != 0 {
			t.Fatalf("accepted fragmented request (seq=%d)", seq)
		}
		if !bytes.Equal(payload, data[UDPHeaderLen:]) {
			t.Fatal("payload does not alias the datagram tail")
		}
		// The response header must echo the request id.
		var resp [UDPHeaderLen]byte
		PutUDPHeader(resp[:], reqID, 0, 1)
		if !bytes.Equal(resp[:2], data[:2]) {
			t.Fatalf("request id not echoed: sent %x, frame has %x", data[:2], resp[:2])
		}
	})
}
