package kvserver

// Migration chunk framing. A key-range handoff streams the moving keys
// to their new owner as chunks of pipelined binary-protocol frames: one
// quiet Add (OpAddQ) per key followed by a Noop barrier. The receiver
// is any stock kv3d server — migration needs no new opcode:
//
//   - Add, not Set: if the target already holds a newer value for the
//     key (a client wrote it there after ownership moved), migration
//     must not clobber it. The already-exists error a lost race
//     produces is counted and skipped, not retried.
//   - Quiet: successes are silent, so a chunk costs one response round
//     trip (the barrier) plus one frame per *failed* key.
//   - The vbucket field carries protocol.ReplLocal, so a replicating
//     target does not re-fan-out migrated keys.
//
// The encoder and decoder are strict inverses; FuzzMigChunk holds the
// decoder to "never panic, and re-encode what you decoded byte-
// identically".

import (
	"encoding/binary"
	"fmt"

	"kv3d/internal/protocol"
)

// MigEntry is one key-value pair in a migration chunk.
type MigEntry struct {
	Key     string
	Value   []byte
	Flags   uint32
	Exptime int64
}

const migHeaderLen = 24

// maxMigValue bounds a decoded entry's value so a corrupt length field
// cannot demand an absurd allocation.
const maxMigValue = 64 << 20

// AppendChunk appends one migration chunk to dst and returns it: an
// OpAddQ frame per entry, then an OpNoop barrier carrying
// barrierOpaque. Entry frames carry their index as opaque so error
// responses identify the failing key.
func AppendChunk(dst []byte, entries []MigEntry, barrierOpaque uint32) []byte {
	var hdr [migHeaderLen]byte
	for i, e := range entries {
		var extras [8]byte
		binary.BigEndian.PutUint32(extras[:], e.Flags)
		binary.BigEndian.PutUint32(extras[4:], uint32(e.Exptime))
		hdr = [migHeaderLen]byte{}
		hdr[0] = protocol.MagicRequest
		hdr[1] = protocol.OpAddQ
		binary.BigEndian.PutUint16(hdr[2:], uint16(len(e.Key)))
		hdr[4] = byte(len(extras))
		binary.BigEndian.PutUint16(hdr[6:], uint16(protocol.ReplLocal))
		binary.BigEndian.PutUint32(hdr[8:], uint32(len(extras)+len(e.Key)+len(e.Value)))
		binary.BigEndian.PutUint32(hdr[12:], uint32(i))
		dst = append(dst, hdr[:]...)
		dst = append(dst, extras[:]...)
		dst = append(dst, e.Key...)
		dst = append(dst, e.Value...)
	}
	hdr = [migHeaderLen]byte{}
	hdr[0] = protocol.MagicRequest
	hdr[1] = protocol.OpNoop
	binary.BigEndian.PutUint32(hdr[12:], barrierOpaque)
	return append(dst, hdr[:]...)
}

// DecodeChunk parses one chunk produced by AppendChunk, returning its
// entries and the barrier opaque. It rejects anything AppendChunk could
// not have produced: wrong magic or opcode, missing extras, trailing
// bytes after the barrier, or a chunk with no barrier.
func DecodeChunk(data []byte) ([]MigEntry, uint32, error) {
	var entries []MigEntry
	for {
		if len(data) < migHeaderLen {
			return nil, 0, fmt.Errorf("kvserver: truncated migration chunk (%d bytes left, no barrier)", len(data))
		}
		if data[0] != protocol.MagicRequest {
			return nil, 0, fmt.Errorf("kvserver: bad migration frame magic %#02x", data[0])
		}
		opcode := data[1]
		keyLen := int(binary.BigEndian.Uint16(data[2:]))
		extrasLen := int(data[4])
		vbucket := binary.BigEndian.Uint16(data[6:])
		bodyLen := int(binary.BigEndian.Uint32(data[8:]))
		opaque := binary.BigEndian.Uint32(data[12:])
		// The cas field is always zero in chunks AppendChunk builds; a
		// nonzero one means this is not a migration chunk (and would
		// break the decode/re-encode identity the fuzz target pins).
		if cas := binary.BigEndian.Uint64(data[16:]); cas != 0 {
			return nil, 0, fmt.Errorf("kvserver: migration frame with nonzero cas %d", cas)
		}
		if opcode == protocol.OpNoop {
			if keyLen != 0 || extrasLen != 0 || bodyLen != 0 || vbucket != 0 {
				return nil, 0, fmt.Errorf("kvserver: migration barrier with a body")
			}
			if len(data) != migHeaderLen {
				return nil, 0, fmt.Errorf("kvserver: %d trailing bytes after migration barrier", len(data)-migHeaderLen)
			}
			return entries, opaque, nil
		}
		if opcode != protocol.OpAddQ {
			return nil, 0, fmt.Errorf("kvserver: unexpected opcode %#02x in migration chunk", opcode)
		}
		if extrasLen != 8 {
			return nil, 0, fmt.Errorf("kvserver: migration entry with %d extras bytes, want 8", extrasLen)
		}
		if vbucket != uint16(protocol.ReplLocal) {
			return nil, 0, fmt.Errorf("kvserver: migration entry vbucket %d, want %d (ReplLocal)", vbucket, protocol.ReplLocal)
		}
		valueLen := bodyLen - extrasLen - keyLen
		if valueLen < 0 || valueLen > maxMigValue {
			return nil, 0, fmt.Errorf("kvserver: migration entry value length %d out of range", valueLen)
		}
		if opaque != uint32(len(entries)) {
			return nil, 0, fmt.Errorf("kvserver: migration entry opaque %d, want index %d", opaque, len(entries))
		}
		total := migHeaderLen + bodyLen
		if len(data) < total {
			return nil, 0, fmt.Errorf("kvserver: truncated migration entry body (%d of %d bytes)", len(data)-migHeaderLen, bodyLen)
		}
		body := data[migHeaderLen:total]
		entries = append(entries, MigEntry{
			Flags:   binary.BigEndian.Uint32(body),
			Exptime: int64(int32(binary.BigEndian.Uint32(body[4:]))),
			Key:     string(body[extrasLen : extrasLen+keyLen]),
			Value:   append([]byte(nil), body[extrasLen+keyLen:]...),
		})
		data = data[total:]
	}
}
