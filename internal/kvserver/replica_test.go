package kvserver

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"kv3d/internal/cluster"
	"kv3d/internal/protocol"
	"kv3d/internal/testutil"
)

// fakeReplStore records replica frames per peer, standing in for the
// remote servers behind a Replicator's dialed connections.
type fakeReplStore struct {
	mu      sync.Mutex
	values  map[string]map[string]string // peer -> key -> value
	deletes map[string][]string          // peer -> deleted keys
	touches map[string]map[string]int64  // peer -> key -> exptime
	flushes map[string][]int64           // peer -> flush delays
	fail    map[string]error             // peer -> send error
	dialErr map[string]error             // peer -> dial error
	dials   map[string]int
}

func newFakeReplStore() *fakeReplStore {
	return &fakeReplStore{
		values:  map[string]map[string]string{},
		deletes: map[string][]string{},
		touches: map[string]map[string]int64{},
		flushes: map[string][]int64{},
		fail:    map[string]error{},
		dialErr: map[string]error{},
		dials:   map[string]int{},
	}
}

func (f *fakeReplStore) dial(addr string) (ReplConn, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.dials[addr]++
	if err := f.dialErr[addr]; err != nil {
		return nil, err
	}
	return &fakeReplConn{store: f, addr: addr}, nil
}

func (f *fakeReplStore) get(peer, key string) (string, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	v, ok := f.values[peer][key]
	return v, ok
}

type fakeReplConn struct {
	store *fakeReplStore
	addr  string
}

func (c *fakeReplConn) SetWithMode(key string, value []byte, flags uint32, exptime int64, mode protocol.ReplMode) error {
	c.store.mu.Lock()
	defer c.store.mu.Unlock()
	if err := c.store.fail[c.addr]; err != nil {
		return err
	}
	if mode != protocol.ReplLocal {
		return fmt.Errorf("replica frame carried mode %v, want local", mode)
	}
	m := c.store.values[c.addr]
	if m == nil {
		m = map[string]string{}
		c.store.values[c.addr] = m
	}
	m[key] = string(value)
	return nil
}

func (c *fakeReplConn) DeleteWithMode(key string, mode protocol.ReplMode) error {
	c.store.mu.Lock()
	defer c.store.mu.Unlock()
	if err := c.store.fail[c.addr]; err != nil {
		return err
	}
	if mode != protocol.ReplLocal {
		return fmt.Errorf("replica frame carried mode %v, want local", mode)
	}
	delete(c.store.values[c.addr], key)
	c.store.deletes[c.addr] = append(c.store.deletes[c.addr], key)
	return nil
}

func (c *fakeReplConn) TouchWithMode(key string, exptime int64, mode protocol.ReplMode) error {
	c.store.mu.Lock()
	defer c.store.mu.Unlock()
	if err := c.store.fail[c.addr]; err != nil {
		return err
	}
	if mode != protocol.ReplLocal {
		return fmt.Errorf("replica frame carried mode %v, want local", mode)
	}
	m := c.store.touches[c.addr]
	if m == nil {
		m = map[string]int64{}
		c.store.touches[c.addr] = m
	}
	m[key] = exptime
	return nil
}

func (c *fakeReplConn) FlushWithMode(delay int64, mode protocol.ReplMode) error {
	c.store.mu.Lock()
	defer c.store.mu.Unlock()
	if err := c.store.fail[c.addr]; err != nil {
		return err
	}
	if mode != protocol.ReplLocal {
		return fmt.Errorf("replica frame carried mode %v, want local", mode)
	}
	c.store.flushes[c.addr] = append(c.store.flushes[c.addr], delay)
	return nil
}

func (c *fakeReplConn) Close() error { return nil }

// threeNodeMembership builds self + two peers.
func threeNodeMembership(t *testing.T) *cluster.Membership {
	t.Helper()
	m := cluster.NewMembership(16)
	m.Join("self", 1)
	m.Join("peer-a", 1)
	m.Join("peer-b", 1)
	return m
}

func newTestReplicator(t *testing.T, fake *fakeReplStore, mode protocol.ReplMode) *Replicator {
	t.Helper()
	r, err := NewReplicator(ReplOptions{
		Self:          "self",
		Membership:    threeNodeMembership(t),
		Replicas:      2,
		DefaultMode:   mode,
		QuorumTimeout: time.Second,
		Dial:          fake.dial,
	})
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// remoteOwners lists a key's owners excluding self.
func remoteOwners(t *testing.T, m *cluster.Membership, key string, n int) []string {
	t.Helper()
	owners, err := m.LocateN(key, n)
	if err != nil {
		t.Fatal(err)
	}
	var out []string
	for _, o := range owners {
		if o != "self" {
			out = append(out, o)
		}
	}
	return out
}

func TestReplicatorAsyncFanout(t *testing.T) {
	defer testutil.CheckGoroutines(t)
	fake := newFakeReplStore()
	r := newTestReplicator(t, fake, protocol.ReplAsync)
	defer r.Close()

	keys := []string{"alpha", "bravo", "charlie", "delta", "echo"}
	for _, k := range keys {
		if err := r.ReplicateSet(k, []byte("v-"+k), 1, 0, protocol.ReplDefault); err != nil {
			t.Fatalf("async replicate %q: %v", k, err)
		}
	}
	if err := r.Drain(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	// Workers may still be finishing the job they dequeued last; settle.
	deadline := time.Now().Add(2 * time.Second)
	for _, k := range keys {
		for _, peer := range remoteOwners(t, r.opts.Membership, k, 2) {
			for {
				v, ok := fake.get(peer, k)
				if ok {
					if v != "v-"+k {
						t.Fatalf("peer %s key %s = %q", peer, k, v)
					}
					break
				}
				if time.Now().After(deadline) {
					t.Fatalf("peer %s never received %q", peer, k)
				}
				time.Sleep(time.Millisecond)
			}
		}
	}
	if got := r.asyncSent.Load(); got == 0 {
		t.Fatal("async sent counter stayed zero")
	}
}

func TestReplicatorQuorumAck(t *testing.T) {
	defer testutil.CheckGoroutines(t)
	fake := newFakeReplStore()
	r := newTestReplicator(t, fake, protocol.ReplQuorum)
	defer r.Close()

	if err := r.ReplicateSet("q-key", []byte("qv"), 0, 0, protocol.ReplQuorum); err != nil {
		t.Fatalf("quorum replicate: %v", err)
	}
	if r.quorumOK.Load() != 1 {
		t.Fatalf("quorum ok = %d", r.quorumOK.Load())
	}
	// With R=2 the quorum is 2; whether self owns the key or not, at
	// least one remote owner must hold the value now (synchronously).
	remotes := remoteOwners(t, r.opts.Membership, "q-key", 2)
	found := false
	for _, peer := range remotes {
		if v, ok := fake.get(peer, "q-key"); ok && v == "qv" {
			found = true
		}
	}
	if !found {
		t.Fatalf("no remote owner of %v holds the value after quorum ack", remotes)
	}

	if err := r.ReplicateDelete("q-key", protocol.ReplQuorum); err != nil {
		t.Fatalf("quorum delete: %v", err)
	}
	for _, peer := range remotes {
		if _, ok := fake.get(peer, "q-key"); ok {
			t.Fatalf("peer %s still holds deleted key", peer)
		}
	}
}

func TestReplicatorQuorumShortfall(t *testing.T) {
	defer testutil.CheckGoroutines(t)
	fake := newFakeReplStore()
	boom := errors.New("peer down")
	fake.dialErr["peer-a"] = boom
	fake.dialErr["peer-b"] = boom
	r := newTestReplicator(t, fake, protocol.ReplQuorum)
	defer r.Close()

	err := r.ReplicateSet("q-key", []byte("qv"), 0, 0, protocol.ReplQuorum)
	if err == nil {
		t.Fatal("quorum write succeeded with every peer unreachable")
	}
	if !errors.Is(err, ErrNoQuorum) {
		t.Fatalf("err = %v, want ErrNoQuorum", err)
	}
	if r.quorumFailed.Load() != 1 {
		t.Fatalf("quorum failed counter = %d", r.quorumFailed.Load())
	}
}

// TestReplicatorSingleNodeQuorum: with only self in the membership, a
// quorum write is satisfied by the local store alone.
func TestReplicatorSingleNodeQuorum(t *testing.T) {
	defer testutil.CheckGoroutines(t)
	m := cluster.NewMembership(16)
	m.Join("self", 1)
	r, err := NewReplicator(ReplOptions{
		Self: "self", Membership: m, Replicas: 2,
		DefaultMode: protocol.ReplQuorum,
		Dial: func(string) (ReplConn, error) {
			return nil, errors.New("must not dial")
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if err := r.ReplicateSet("k", []byte("v"), 0, 0, protocol.ReplQuorum); err != nil {
		t.Fatalf("single-node quorum: %v", err)
	}
}

// TestReplicatorFollowsMembership: fan-out targets are resolved at send
// time, so a join shifts subsequent writes to the new member.
func TestReplicatorFollowsMembership(t *testing.T) {
	defer testutil.CheckGoroutines(t)
	fake := newFakeReplStore()
	m := cluster.NewMembership(16)
	m.Join("self", 1)
	m.Join("peer-a", 1)
	r, err := NewReplicator(ReplOptions{
		Self: "self", Membership: m, Replicas: 2,
		DefaultMode: protocol.ReplQuorum, QuorumTimeout: time.Second,
		Dial: fake.dial,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	if err := r.ReplicateSet("k1", []byte("v1"), 0, 0, protocol.ReplQuorum); err != nil {
		t.Fatal(err)
	}
	if _, ok := fake.get("peer-a", "k1"); !ok {
		t.Fatal("two-node cluster: peer-a must hold k1")
	}

	m.Join("peer-b", 1)
	// Find a key peer-b now owns and verify quorum writes reach it.
	for i := 0; i < 2000; i++ {
		key := fmt.Sprintf("mk-%d", i)
		owners := remoteOwners(t, m, key, 2)
		hasB := false
		for _, o := range owners {
			hasB = hasB || o == "peer-b"
		}
		if !hasB {
			continue
		}
		if err := r.ReplicateSet(key, []byte("vb"), 0, 0, protocol.ReplQuorum); err != nil {
			t.Fatal(err)
		}
		if err := r.Drain(2 * time.Second); err != nil {
			t.Fatal(err)
		}
		deadline := time.Now().Add(2 * time.Second)
		for {
			if v, ok := fake.get("peer-b", key); ok && v == "vb" {
				return // success
			}
			if time.Now().After(deadline) {
				t.Fatalf("post-join quorum write to %q never reached peer-b (owners %v)", key, owners)
			}
			time.Sleep(time.Millisecond)
		}
	}
	t.Fatal("no key owned by peer-b found in 2000 tries")
}

// TestReplicatorTouchFanout: touch rides the same key-owner fan-out as
// sets — every remote owner of the key receives the new exptime.
// Pre-fix, touch never reached the Replicator at all, so replica TTLs
// silently diverged from the primary's.
func TestReplicatorTouchFanout(t *testing.T) {
	defer testutil.CheckGoroutines(t)
	fake := newFakeReplStore()
	r := newTestReplicator(t, fake, protocol.ReplAsync)
	defer r.Close()

	keys := []string{"alpha", "bravo", "charlie"}
	for _, k := range keys {
		if err := r.ReplicateTouch(k, 300, protocol.ReplDefault); err != nil {
			t.Fatalf("replicate touch %q: %v", k, err)
		}
	}
	if err := r.Drain(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for _, k := range keys {
		for _, peer := range remoteOwners(t, r.opts.Membership, k, 2) {
			for {
				fake.mu.Lock()
				exp, ok := fake.touches[peer][k]
				fake.mu.Unlock()
				if ok {
					if exp != 300 {
						t.Fatalf("peer %s touch exptime for %s = %d, want 300", peer, k, exp)
					}
					break
				}
				if time.Now().After(deadline) {
					t.Fatalf("peer %s never received touch of %q", peer, k)
				}
				time.Sleep(time.Millisecond)
			}
		}
	}
}

// TestReplicatorFlushFanoutAll: flush is keyless, so it targets every
// member except self — not just a key's owner set. A flush that skipped
// a non-owner peer would leave that peer serving the flushed data.
func TestReplicatorFlushFanoutAll(t *testing.T) {
	defer testutil.CheckGoroutines(t)
	fake := newFakeReplStore()
	r := newTestReplicator(t, fake, protocol.ReplAsync)
	defer r.Close()

	if err := r.ReplicateFlush(60, protocol.ReplDefault); err != nil {
		t.Fatalf("replicate flush: %v", err)
	}
	if err := r.Drain(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for _, peer := range []string{"peer-a", "peer-b"} {
		for {
			fake.mu.Lock()
			delays := append([]int64(nil), fake.flushes[peer]...)
			fake.mu.Unlock()
			if len(delays) == 1 && delays[0] == 60 {
				break
			}
			if len(delays) > 1 {
				t.Fatalf("peer %s received %d flushes, want 1", peer, len(delays))
			}
			if time.Now().After(deadline) {
				t.Fatalf("peer %s never received the flush (got %v)", peer, delays)
			}
			time.Sleep(time.Millisecond)
		}
	}
}

// TestReplicatorTouchFlushQuorum: quorum touch and flush acknowledge
// synchronously; a quorum flush counts the local flush as one vote and
// still succeeds with one of two peers down.
func TestReplicatorTouchFlushQuorum(t *testing.T) {
	defer testutil.CheckGoroutines(t)
	fake := newFakeReplStore()
	r := newTestReplicator(t, fake, protocol.ReplQuorum)
	defer r.Close()

	if err := r.ReplicateTouch("qk", 120, protocol.ReplQuorum); err != nil {
		t.Fatalf("quorum touch: %v", err)
	}
	if err := r.ReplicateFlush(0, protocol.ReplQuorum); err != nil {
		t.Fatalf("quorum flush: %v", err)
	}
	fake.mu.Lock()
	flushed := len(fake.flushes["peer-a"]) + len(fake.flushes["peer-b"])
	fake.mu.Unlock()
	if flushed == 0 {
		t.Fatal("quorum flush reached no peer")
	}

	fake.mu.Lock()
	fake.fail["peer-a"] = errors.New("peer down")
	fake.mu.Unlock()
	if err := r.ReplicateFlush(5, protocol.ReplQuorum); err != nil {
		t.Fatalf("quorum flush with one peer down must still reach majority (self + peer-b): %v", err)
	}
}

// TestReplicatorCloseJoinsWorkers: Close stops every peer worker even
// with queued work, and queued-but-unsent jobs are counted dropped.
func TestReplicatorCloseJoinsWorkers(t *testing.T) {
	defer testutil.CheckGoroutines(t)
	fake := newFakeReplStore()
	block := make(chan struct{})
	r, err := NewReplicator(ReplOptions{
		Self: "self", Membership: threeNodeMembership(t), Replicas: 2,
		DefaultMode: protocol.ReplAsync, QueueDepth: 4,
		Dial: func(addr string) (ReplConn, error) {
			<-block // stall the first dial so jobs pile up
			return fake.dial(addr)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		r.ReplicateSet(fmt.Sprintf("k-%d", i), []byte("v"), 0, 0, protocol.ReplAsync)
	}
	close(block)
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	// Second close is a no-op.
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	queued := r.asyncQueued.Load()
	dropped := r.asyncDropped.Load()
	if queued == 0 || dropped == 0 {
		t.Fatalf("expected both queued (%d) and dropped (%d) with tiny stalled queues", queued, dropped)
	}
}
