package kvserver_test

// Live end-to-end coverage for the PR-10 batched datapath and the
// touch/flush replication fix: real servers (batched event-loop core
// enabled), real Replicators dialing each other over loopback, and a
// real binary client driving the cluster through one node.

import (
	"fmt"
	"testing"
	"time"

	"kv3d/internal/cluster"
	"kv3d/internal/kvclient"
	"kv3d/internal/kvserver"
	"kv3d/internal/kvstore"
	"kv3d/internal/protocol"
	"kv3d/internal/testutil"
)

// batchedNode is one live batched server plus its replication wiring.
type batchedNode struct {
	addr string
	srv  *kvserver.Server
	st   *kvstore.Store
	mem  *cluster.Membership
	repl *kvserver.Replicator
}

// startBatchedCluster boots n live servers with Options.Batched set and
// a fully-joined shared membership, default-quorum replication.
func startBatchedCluster(t *testing.T, n int) []*batchedNode {
	t.Helper()
	nodes := make([]*batchedNode, 0, n)
	for i := 0; i < n; i++ {
		st, err := kvstore.New(kvstore.DefaultConfig(32 << 20))
		if err != nil {
			t.Fatal(err)
		}
		srv := kvserver.NewWithOptions(st, nil, kvserver.Options{Batched: true})
		if err := srv.Listen("127.0.0.1:0"); err != nil {
			t.Fatal(err)
		}
		nodes = append(nodes, &batchedNode{
			addr: srv.Addr().String(),
			srv:  srv,
			st:   st,
			mem:  cluster.NewMembership(64),
		})
	}
	for _, node := range nodes {
		for _, peer := range nodes {
			node.mem.Join(peer.addr, 1)
		}
	}
	for _, node := range nodes {
		repl, err := kvserver.NewReplicator(kvserver.ReplOptions{
			Self:          node.addr,
			Membership:    node.mem,
			Replicas:      2,
			DefaultMode:   protocol.ReplQuorum,
			QuorumTimeout: 2 * time.Second,
			Dial:          replDial,
		})
		if err != nil {
			t.Fatal(err)
		}
		node.repl = repl
		node.srv.SetReplicator(repl)
		go node.srv.Serve()
		node := node
		t.Cleanup(func() {
			node.srv.Close()
			node.repl.Close()
		})
	}
	return nodes
}

// holders counts how many nodes' local stores currently return the key.
func holders(nodes []*batchedNode, key string) int {
	n := 0
	for _, node := range nodes {
		if _, ok := node.st.Get(key); ok {
			n++
		}
	}
	return n
}

// TestLiveTouchFlushDivergence is the 3-node regression for the
// touch/flush replication gap: a negative-exptime touch issued through
// one node must expire the key on every replica, and a flush through
// one node must empty all three stores. Pre-fix, neither operation
// reached the Replicator, so replicas kept serving data the primary had
// already invalidated.
func TestLiveTouchFlushDivergence(t *testing.T) {
	defer testutil.CheckGoroutines(t)
	nodes := startBatchedCluster(t, 3)

	cli, err := kvclient.DialBinary(nodes[0].addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	keys := make([]string, 12)
	for i := range keys {
		keys[i] = fmt.Sprintf("div-%d", i)
		if err := cli.SetWithMode(keys[i], []byte("v"), 0, 0, protocol.ReplQuorum); err != nil {
			t.Fatalf("quorum set %s: %v", keys[i], err)
		}
	}
	// Quorum sets replicate to the key's owners: each key must be held
	// by at least two of the three stores before the divergence check
	// means anything.
	for _, k := range keys {
		if h := holders(nodes, k); h < 2 {
			t.Fatalf("after quorum set, %s held by %d nodes, want >= 2", k, h)
		}
	}

	// Touch with exptime -1 through node 0: immediately expired, and
	// the expiry must propagate to every replica.
	for _, k := range keys[:6] {
		if err := cli.TouchWithMode(k, -1, protocol.ReplQuorum); err != nil {
			t.Fatalf("quorum touch %s: %v", k, err)
		}
	}
	for _, k := range keys[:6] {
		if h := holders(nodes, k); h != 0 {
			t.Fatalf("after negative-exptime touch, %s still held by %d nodes (replica TTLs diverged)", k, h)
		}
	}

	// Flush through node 0: every node must converge to empty. The
	// flush epoch is the next wall second, so poll briefly.
	if err := cli.FlushWithMode(0, protocol.ReplQuorum); err != nil {
		t.Fatalf("quorum flush: %v", err)
	}
	deadline := time.Now().Add(3 * time.Second)
	for {
		remaining := 0
		for _, k := range keys[6:] {
			remaining += holders(nodes, k)
		}
		if remaining == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("after cluster flush, %d key-holders remain across nodes (flush did not fan out)", remaining)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestLiveBatchedPipeline: a batched server serves a pipelined client
// correctly, and the pipelined gets demonstrably flow through the
// coalescer (the counters would stay zero if handle() never wired it).
func TestLiveBatchedPipeline(t *testing.T) {
	defer testutil.CheckGoroutines(t)
	st, err := kvstore.New(kvstore.DefaultConfig(32 << 20))
	if err != nil {
		t.Fatal(err)
	}
	srv := kvserver.NewWithOptions(st, nil, kvserver.Options{Batched: true})
	if err := srv.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	go srv.Serve()
	defer srv.Close()

	cli, err := kvclient.DialBinary(srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	keys := make([]string, 64)
	for i := range keys {
		keys[i] = fmt.Sprintf("pk-%d", i)
		if i%4 == 0 {
			continue // leave a quarter missing
		}
		if err := cli.Set(keys[i], []byte(fmt.Sprintf("val-%d", i)), uint32(i), 0); err != nil {
			t.Fatalf("set %s: %v", keys[i], err)
		}
	}
	items, err := cli.GetMulti(keys)
	if err != nil {
		t.Fatalf("pipelined multiget: %v", err)
	}
	for i, k := range keys {
		it, ok := items[k]
		if i%4 == 0 {
			if ok {
				t.Fatalf("missing key %s returned %+v", k, it)
			}
			continue
		}
		if !ok || string(it.Value) != fmt.Sprintf("val-%d", i) || it.Flags != uint32(i) {
			t.Fatalf("key %s = %+v, want val-%d/flags %d", k, it, i, i)
		}
	}
	coal := srv.Coalescer()
	if coal == nil {
		t.Fatal("batched server has no coalescer")
	}
	if coal.Rounds() == 0 || coal.Ops() == 0 {
		t.Fatalf("pipelined gets bypassed the coalescer: rounds=%d ops=%d", coal.Rounds(), coal.Ops())
	}
}
