package kvserver

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
	"time"

	"kv3d/internal/kvstore"
	"kv3d/internal/testutil"
)

func newMigStore(t *testing.T) *kvstore.Store {
	t.Helper()
	st, err := kvstore.New(kvstore.DefaultConfig(32 << 20))
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func TestMigChunkRoundTrip(t *testing.T) {
	entries := []MigEntry{
		{Key: "alpha", Value: []byte("one"), Flags: 7, Exptime: 0},
		{Key: "bravo", Value: nil, Flags: 0, Exptime: 1_900_000_000},
		{Key: "charlie", Value: bytes.Repeat([]byte("x"), 300), Flags: 0xffffffff},
	}
	chunk := AppendChunk(nil, entries, 42)
	got, barrier, err := DecodeChunk(chunk)
	if err != nil {
		t.Fatal(err)
	}
	if barrier != 42 {
		t.Fatalf("barrier = %d", barrier)
	}
	if len(got) != len(entries) {
		t.Fatalf("decoded %d entries, want %d", len(got), len(entries))
	}
	for i, e := range entries {
		g := got[i]
		if g.Key != e.Key || !bytes.Equal(g.Value, e.Value) || g.Flags != e.Flags || g.Exptime != e.Exptime {
			t.Fatalf("entry %d: got %+v, want %+v", i, g, e)
		}
	}
	// Strict inverse: re-encoding the decode reproduces the bytes.
	if re := AppendChunk(nil, got, barrier); !bytes.Equal(re, chunk) {
		t.Fatal("re-encoded chunk differs from original")
	}
	// Empty chunk is just a barrier.
	if got, barrier, err = DecodeChunk(AppendChunk(nil, nil, 9)); err != nil || len(got) != 0 || barrier != 9 {
		t.Fatalf("empty chunk: entries=%d barrier=%d err=%v", len(got), barrier, err)
	}
}

func TestMigChunkDecodeRejects(t *testing.T) {
	valid := AppendChunk(nil, []MigEntry{{Key: "k", Value: []byte("v")}}, 1)
	cases := map[string]func([]byte) []byte{
		"truncated header":  func(b []byte) []byte { return b[:10] },
		"no barrier":        func(b []byte) []byte { return b[:len(b)-migHeaderLen] },
		"bad magic":         func(b []byte) []byte { b[0] = 0x99; return b },
		"bad opcode":        func(b []byte) []byte { b[1] = 0xee; return b },
		"nonzero cas":       func(b []byte) []byte { b[20] = 1; return b },
		"trailing bytes":    func(b []byte) []byte { return append(b, 0) },
		"wrong vbucket":     func(b []byte) []byte { b[7] = 0; return b },
		"wrong opaque":      func(b []byte) []byte { b[15] = 5; return b },
		"truncated body":    func(b []byte) []byte { return b[:migHeaderLen+3] },
		"barrier with body": func(b []byte) []byte { b[len(b)-migHeaderLen+4] = 1; return b },
	}
	for name, corrupt := range cases {
		b := corrupt(append([]byte(nil), valid...))
		if _, _, err := DecodeChunk(b); err == nil {
			t.Errorf("%s: decode accepted a corrupt chunk", name)
		}
	}
}

// FuzzMigChunk holds DecodeChunk to: never panic, and when it accepts
// input, re-encoding the result reproduces the input byte-identically
// (the decoder only accepts what the encoder can produce).
func FuzzMigChunk(f *testing.F) {
	f.Add(AppendChunk(nil, nil, 0))
	f.Add(AppendChunk(nil, []MigEntry{{Key: "k", Value: []byte("v"), Flags: 3, Exptime: 60}}, 7))
	f.Add(AppendChunk(nil, []MigEntry{
		{Key: "a", Value: []byte("1")},
		{Key: "bb", Value: bytes.Repeat([]byte("z"), 100), Flags: 9},
	}, 1))
	f.Add([]byte{0x80, 0x1d, 0, 1})
	f.Fuzz(func(t *testing.T, data []byte) {
		entries, barrier, err := DecodeChunk(data)
		if err != nil {
			return
		}
		if re := AppendChunk(nil, entries, barrier); !bytes.Equal(re, data) {
			t.Fatalf("decode/re-encode not identity:\n in: %x\nout: %x", data, re)
		}
	})
}

// TestMigrationEndToEnd streams a store's keys into a live server and
// checks values, flags, and absolute TTLs survive the move.
func TestMigrationEndToEnd(t *testing.T) {
	defer testutil.CheckGoroutines(t)
	target, addr := startServer(t)

	src := newMigStore(t)
	ttl := time.Now().Unix() + 3600
	for i := 0; i < 500; i++ {
		k := fmt.Sprintf("mig-%03d", i)
		if err := src.Set(k, []byte("val-"+k), uint32(i), ttl); err != nil {
			t.Fatal(err)
		}
	}

	m, err := NewMigrator(MigOptions{Store: src})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	st, err := m.Start(StreamOptions{Target: addr, ChunkKeys: 64})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Wait(); err != nil {
		t.Fatalf("stream failed: %v", err)
	}
	if st.Cursor() != st.Total() || st.Total() != 500 {
		t.Fatalf("cursor %d / total %d, want 500/500", st.Cursor(), st.Total())
	}
	for i := 0; i < 500; i++ {
		k := fmt.Sprintf("mig-%03d", i)
		e, exp, ok := target.store.GetWithExpiry(k)
		if !ok {
			t.Fatalf("target missing %q", k)
		}
		if string(e.Value) != "val-"+k || e.Flags != uint32(i) {
			t.Fatalf("target %q = %q flags %d", k, e.Value, e.Flags)
		}
		if exp != ttl {
			t.Fatalf("target %q expiry %d, want %d (TTL must survive migration)", k, exp, ttl)
		}
	}
	if got := m.completed.Load(); got != 1 {
		t.Fatalf("completed = %d", got)
	}
	if m.keysSent.Load() != 500 {
		t.Fatalf("keys_sent = %d", m.keysSent.Load())
	}
}

// TestMigrationAddSemantics: a value the target already holds (written
// after ownership moved) is not clobbered — the quiet Add fails with
// StatusKeyExists, counted as a skip.
func TestMigrationAddSemantics(t *testing.T) {
	defer testutil.CheckGoroutines(t)
	target, addr := startServer(t)
	if err := target.store.Set("contested", []byte("newer"), 1, 0); err != nil {
		t.Fatal(err)
	}

	src := newMigStore(t)
	if err := src.Set("contested", []byte("stale"), 2, 0); err != nil {
		t.Fatal(err)
	}
	if err := src.Set("fresh", []byte("moved"), 3, 0); err != nil {
		t.Fatal(err)
	}

	m, err := NewMigrator(MigOptions{Store: src})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	st, err := m.Start(StreamOptions{Target: addr})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Wait(); err != nil {
		t.Fatal(err)
	}
	if e, ok := target.store.Get("contested"); !ok || string(e.Value) != "newer" {
		t.Fatalf("migration clobbered the target's newer value: %q", e.Value)
	}
	if e, ok := target.store.Get("fresh"); !ok || string(e.Value) != "moved" {
		t.Fatalf("fresh key not migrated: %q", e.Value)
	}
	if m.keysSkipped.Load() != 1 || m.keysSent.Load() != 1 {
		t.Fatalf("skipped=%d sent=%d, want 1/1", m.keysSkipped.Load(), m.keysSent.Load())
	}
	if m.sendErrors.Load() != 0 {
		t.Fatalf("send_errors = %d", m.sendErrors.Load())
	}
}

// TestMigrationOwnedFilter: only keys the predicate claims move.
func TestMigrationOwnedFilter(t *testing.T) {
	defer testutil.CheckGoroutines(t)
	target, addr := startServer(t)
	src := newMigStore(t)
	for i := 0; i < 100; i++ {
		if err := src.Set(fmt.Sprintf("f-%02d", i), []byte("v"), 0, 0); err != nil {
			t.Fatal(err)
		}
	}
	m, err := NewMigrator(MigOptions{Store: src})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	st, err := m.Start(StreamOptions{
		Target: addr,
		Owned:  func(k string) bool { return k < "f-50" },
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Wait(); err != nil {
		t.Fatal(err)
	}
	if st.Total() != 50 {
		t.Fatalf("total = %d, want 50", st.Total())
	}
	if _, ok := target.store.Get("f-49"); !ok {
		t.Fatal("owned key f-49 not migrated")
	}
	if _, ok := target.store.Get("f-50"); ok {
		t.Fatal("unowned key f-50 migrated")
	}
}

// TestMigrationResume: a stream stopped mid-handoff reports a cursor a
// successor resumes from; between the two, every key arrives.
func TestMigrationResume(t *testing.T) {
	defer testutil.CheckGoroutines(t)
	target, addr := startServer(t)
	src := newMigStore(t)
	const n = 40
	for i := 0; i < n; i++ {
		if err := src.Set(fmt.Sprintf("r-%02d", i), []byte("v"), 0, 0); err != nil {
			t.Fatal(err)
		}
	}
	m, err := NewMigrator(MigOptions{Store: src})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	// Small chunks plus a rate cap keep the stream in flight long
	// enough to stop it deterministically after the first chunk.
	st, err := m.Start(StreamOptions{Target: addr, ChunkKeys: 10, RateKeysPerSec: 10})
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for st.Cursor() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("stream never advanced")
		}
		time.Sleep(time.Millisecond)
	}
	st.Stop()
	if err := st.Err(); !errors.Is(err, ErrMigrationStopped) {
		t.Fatalf("stopped stream err = %v", err)
	}
	cursor := st.Cursor()
	if cursor == 0 || cursor >= n {
		t.Fatalf("cursor = %d, want mid-stream", cursor)
	}
	if m.interrupted.Load() != 1 {
		t.Fatalf("interrupted = %d", m.interrupted.Load())
	}

	st2, err := m.Start(StreamOptions{Target: addr, ChunkKeys: 10, StartAt: cursor})
	if err != nil {
		t.Fatal(err)
	}
	if err := st2.Wait(); err != nil {
		t.Fatal(err)
	}
	if m.resumed.Load() != 1 {
		t.Fatalf("resumed = %d", m.resumed.Load())
	}
	for i := 0; i < n; i++ {
		k := fmt.Sprintf("r-%02d", i)
		if _, ok := target.store.Get(k); !ok {
			t.Fatalf("key %q lost across stop/resume (cursor %d)", k, cursor)
		}
	}
}

// TestMigrationCloseJoinsStreams: Close during an in-flight handoff
// interrupts every stream and joins their goroutines (satellite-c
// lifecycle guarantee; CheckGoroutines enforces the join).
func TestMigrationCloseJoinsStreams(t *testing.T) {
	defer testutil.CheckGoroutines(t)
	_, addr := startServer(t)
	src := newMigStore(t)
	for i := 0; i < 200; i++ {
		if err := src.Set(fmt.Sprintf("c-%03d", i), []byte("v"), 0, 0); err != nil {
			t.Fatal(err)
		}
	}
	m, err := NewMigrator(MigOptions{Store: src})
	if err != nil {
		t.Fatal(err)
	}
	var streams []*MigrationStream
	for i := 0; i < 3; i++ {
		st, err := m.Start(StreamOptions{Target: addr, ChunkKeys: 5, RateKeysPerSec: 5})
		if err != nil {
			t.Fatal(err)
		}
		streams = append(streams, st)
	}
	// Let them get in flight, then pull the plug.
	deadline := time.Now().Add(5 * time.Second)
	for streams[0].Cursor() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("stream never advanced")
		}
		time.Sleep(time.Millisecond)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	for i, st := range streams {
		select {
		case <-st.Done():
		default:
			t.Fatalf("stream %d not done after Close", i)
		}
		if err := st.Err(); !errors.Is(err, ErrMigrationStopped) {
			t.Fatalf("stream %d err = %v, want ErrMigrationStopped", i, err)
		}
	}
	if m.activeStream.Load() != 0 {
		t.Fatalf("streams_active = %d after Close", m.activeStream.Load())
	}
	// Starting after Close fails rather than leaking a goroutine.
	if _, err := m.Start(StreamOptions{Target: addr}); err == nil {
		t.Fatal("Start succeeded on a closed migrator")
	}
	// Second Close is a no-op.
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestMigratorProbes: the live.migrate.* counters surface through the
// server's probe set when a Migrator is attached.
func TestMigratorProbes(t *testing.T) {
	defer testutil.CheckGoroutines(t)
	src := newMigStore(t)
	m, err := NewMigrator(MigOptions{Store: src})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	st := newMigStore(t)
	srv := NewWithOptions(st, nil, Options{Migrator: m})
	found := false
	for _, p := range srv.Probes() {
		if p.Name == "live.migrate.streams_active" {
			found = true
		}
	}
	if !found {
		t.Fatal("live.migrate.streams_active missing from server probes")
	}
}
