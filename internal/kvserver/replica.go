package kvserver

// Replica write fan-out: the server-side half of the cluster layer.
// Every successful local mutation arrives here from the protocol
// sessions (see protocol.Replicator) and is propagated to the key's
// replica set, looked up in the versioned cluster membership at send
// time — so fan-out follows joins and leaves without reconfiguration.
//
// Two consistency modes, chosen per op by the client (binary vbucket
// flag) or by the server default:
//
//   - async: the op acknowledges after the local store; replica frames
//     are queued to per-peer workers and sent in the background. A full
//     queue drops the frame (counted live.repl.async.dropped) — bounded
//     staleness, never unbounded memory.
//   - quorum: the op acknowledges only after ceil((R+1)/2) members of
//     the key's R-sized replica set (the local store counts when this
//     node is an owner) applied the write, or fails with a no-quorum
//     error after QuorumTimeout.
//
// Replica frames are tagged protocol.ReplLocal, so a receiving server
// applies them locally and never re-replicates: fan-out cannot loop.

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"kv3d/internal/cluster"
	"kv3d/internal/obs"
	"kv3d/internal/protocol"
	"kv3d/internal/sim"
)

// ErrNoQuorum reports a quorum write that could not gather majority
// acknowledgement before QuorumTimeout. The local store stands; the op
// is unacknowledged and safe to retry.
var ErrNoQuorum = errors.New("kvserver: no quorum")

// ReplConn is the per-peer connection a worker replicates over —
// typically a thin adapter over kvclient.BinaryClient (kvserver cannot
// import kvclient itself), replaced by fakes in tests. Implementations
// should treat DeleteWithMode of an absent key as success: the
// replica never had it, so the delete's goal holds.
type ReplConn interface {
	SetWithMode(key string, value []byte, flags uint32, exptime int64, mode protocol.ReplMode) error
	DeleteWithMode(key string, mode protocol.ReplMode) error
	// TouchWithMode propagates a TTL update; an absent key on the
	// replica is success for the same reason as with deletes.
	TouchWithMode(key string, exptime int64, mode protocol.ReplMode) error
	// FlushWithMode propagates a flush_all with its delay.
	FlushWithMode(delay int64, mode protocol.ReplMode) error
	Close() error
}

// ReplOptions configure a Replicator.
type ReplOptions struct {
	// Self is this node's name in the membership (its serving address);
	// it is skipped during fan-out and counts as one quorum vote when it
	// owns the key.
	Self string
	// Membership resolves each key's replica set at send time.
	Membership *cluster.Membership
	// Replicas is the replica-set size R (minimum 1; 1 means no
	// remote copies and quorum writes succeed locally).
	Replicas int
	// DefaultMode resolves protocol.ReplDefault: the mode for clients
	// that did not choose one. ReplDefault/ReplLocal here mean async
	// (the server always has *some* propagation once a Replicator is
	// installed).
	DefaultMode protocol.ReplMode
	// QueueDepth bounds each peer's job queue (default 256).
	QueueDepth int
	// QuorumTimeout bounds how long a quorum write waits for acks
	// (default 2s).
	QuorumTimeout time.Duration
	// Dial opens a connection to a peer (required — usually an adapter
	// over kvclient.DialBinaryOptions; see cmd/kv3d-server).
	Dial func(addr string) (ReplConn, error)
	// Flight, when set, records replication lifecycle instants.
	Flight *obs.FlightRecorder
	// NowNanos timestamps flight instants (required with Flight).
	NowNanos func() sim.Ns
}

func (o ReplOptions) withDefaults() ReplOptions {
	if o.Replicas < 1 {
		o.Replicas = 1
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = 256
	}
	if o.QuorumTimeout <= 0 {
		o.QuorumTimeout = 2 * time.Second
	}
	if o.DefaultMode != protocol.ReplQuorum && o.DefaultMode != protocol.ReplAsync {
		o.DefaultMode = protocol.ReplAsync
	}
	return o
}

// replKind selects the replica-side operation of one job.
type replKind uint8

const (
	replSet replKind = iota
	replDelete
	replTouch
	replFlush // exptime carries the flush delay; key is empty
)

// replJob is one queued replica mutation. value is owned by the job
// (copied out of the session's frame buffer before enqueue).
type replJob struct {
	key     string
	value   []byte
	flags   uint32
	exptime int64
	kind    replKind
	// ack, when non-nil, receives the send outcome (quorum writes);
	// buffered so a worker never blocks on a departed waiter.
	ack chan error
}

// peer is one remote member's replication lane: a bounded queue drained
// by a dedicated worker goroutine owning one lazily-dialed connection.
type peer struct {
	addr string
	q    chan replJob
}

// Replicator fans successful local writes out to replica peers. It
// implements protocol.Replicator and is safe for concurrent use by all
// connection goroutines.
type Replicator struct {
	opts ReplOptions

	mu     sync.Mutex
	peers  map[string]*peer //kv3d:guardedby mu
	closed bool             //kv3d:guardedby mu

	done chan struct{}
	wg   sync.WaitGroup

	// live.repl.* counters, exported through Probes.
	asyncQueued  atomic.Uint64
	asyncSent    atomic.Uint64
	asyncErrors  atomic.Uint64
	asyncDropped atomic.Uint64
	quorumOK     atomic.Uint64
	quorumFailed atomic.Uint64
	quorumAcks   atomic.Uint64

	flightTrack obs.TrackID
}

// NewReplicator builds a replicator over the given membership.
func NewReplicator(opts ReplOptions) (*Replicator, error) {
	if opts.Membership == nil {
		return nil, fmt.Errorf("kvserver: replicator needs a membership")
	}
	if opts.Dial == nil {
		return nil, fmt.Errorf("kvserver: replicator needs a dialer")
	}
	opts = opts.withDefaults()
	r := &Replicator{
		opts:  opts,
		peers: make(map[string]*peer),
		done:  make(chan struct{}),
	}
	if opts.Flight.Enabled() {
		r.flightTrack = opts.Flight.RegisterTrack("replication")
	}
	return r, nil
}

// quorum is the majority threshold for a replica set of size n.
func quorum(n int) int { return n/2 + 1 }

// resolve maps a wire-carried mode onto a concrete action mode.
func (r *Replicator) resolve(mode protocol.ReplMode) protocol.ReplMode {
	if mode == protocol.ReplDefault || mode == protocol.ReplLocal {
		return r.opts.DefaultMode
	}
	return mode
}

// owners returns the key's replica set and whether this node is in it.
func (r *Replicator) owners(key string) (remote []string, selfOwns bool) {
	owners, err := r.opts.Membership.LocateN(key, r.opts.Replicas)
	if err != nil {
		return nil, false // empty membership: nothing to fan out to
	}
	for _, o := range owners {
		if o == r.opts.Self {
			selfOwns = true
			continue
		}
		remote = append(remote, o)
	}
	return remote, selfOwns
}

// ReplicateSet propagates one stored value. Implements
// protocol.Replicator; value is borrowed and copied here.
func (r *Replicator) ReplicateSet(key string, value []byte, flags uint32, exptime int64, mode protocol.ReplMode) error {
	job := replJob{
		key:     key,
		value:   append([]byte(nil), value...),
		flags:   flags,
		exptime: exptime,
	}
	return r.replicate(job, mode)
}

// ReplicateDelete propagates one delete. Implements protocol.Replicator.
func (r *Replicator) ReplicateDelete(key string, mode protocol.ReplMode) error {
	return r.replicate(replJob{key: key, kind: replDelete}, mode)
}

// ReplicateTouch propagates one TTL update. Implements
// protocol.Replicator; async-mode drops are counted like sets.
func (r *Replicator) ReplicateTouch(key string, exptime int64, mode protocol.ReplMode) error {
	return r.replicate(replJob{key: key, exptime: exptime, kind: replTouch}, mode)
}

// ReplicateFlush propagates one flush_all. Implements
// protocol.Replicator. Unlike the keyed ops it fans out to every other
// member — a flush clears the whole keyspace, so every node that owns
// any of it must hear about it.
func (r *Replicator) ReplicateFlush(delay int64, mode protocol.ReplMode) error {
	job := replJob{exptime: delay, kind: replFlush}
	remote := r.allRemotes()
	switch r.resolve(mode) {
	case protocol.ReplQuorum:
		// The local flush already succeeded, so self always votes.
		return r.quorumFanout(job, remote, true)
	default:
		r.asyncFanout(job, remote)
		return nil
	}
}

// allRemotes lists every current member except this node.
func (r *Replicator) allRemotes() []string {
	v := r.opts.Membership.View()
	remote := v.Nodes[:0]
	for _, n := range v.Nodes {
		if n != r.opts.Self {
			remote = append(remote, n)
		}
	}
	return remote
}

func (r *Replicator) replicate(job replJob, mode protocol.ReplMode) error {
	remote, selfOwns := r.owners(job.key)
	switch r.resolve(mode) {
	case protocol.ReplQuorum:
		return r.quorumFanout(job, remote, selfOwns)
	default:
		r.asyncFanout(job, remote)
		return nil
	}
}

// asyncFanout enqueues the job to every remote owner, dropping (and
// counting) when a peer's queue is full.
func (r *Replicator) asyncFanout(job replJob, remote []string) {
	for _, addr := range remote {
		p := r.peer(addr)
		if p == nil {
			r.asyncDropped.Add(1)
			continue
		}
		select {
		case p.q <- job:
			r.asyncQueued.Add(1)
		default:
			r.asyncDropped.Add(1)
		}
	}
}

// quorumFanout enqueues ack-carrying jobs and waits for majority.
func (r *Replicator) quorumFanout(job replJob, remote []string, selfOwns bool) error {
	// Majority over the full replica set: remote owners plus this node
	// when it owns the key. A key the node does not own still counts
	// only its remote owners' acks.
	setSize := len(remote)
	votes := 0
	if selfOwns {
		setSize++
		votes++ // the local store already succeeded
	}
	if setSize == 0 {
		// Single-node membership where self is the only conceivable
		// owner: the local store is the whole replica set.
		return nil
	}
	needed := quorum(setSize)
	if votes >= needed {
		return nil
	}
	ack := make(chan error, len(remote))
	job.ack = ack //nolint:kv3d -- job is a value not yet shared; the channel send below publishes it (happens-before)
	inflight := 0
	for _, addr := range remote {
		p := r.peer(addr)
		if p == nil {
			continue
		}
		select {
		case p.q <- job:
			inflight++
		default:
			// Full queue = an immediate failed vote, not a silent drop:
			// the client asked for acknowledged replication.
		}
	}
	if votes+inflight < needed {
		r.quorumFailed.Add(1)
		r.flightInstant("repl.quorum.fail")
		return fmt.Errorf("%w: %d of %d acks reachable", ErrNoQuorum, votes+inflight, needed)
	}
	deadline := time.NewTimer(r.opts.QuorumTimeout)
	defer deadline.Stop()
	for votes < needed {
		select {
		case err := <-ack:
			inflight--
			if err == nil {
				votes++
				r.quorumAcks.Add(1)
			} else if votes+inflight < needed {
				r.quorumFailed.Add(1)
				r.flightInstant("repl.quorum.fail")
				return fmt.Errorf("%w: %d of %d acks (%v)", ErrNoQuorum, votes, needed, err)
			}
		case <-deadline.C:
			r.quorumFailed.Add(1)
			r.flightInstant("repl.quorum.fail")
			return fmt.Errorf("%w: %d of %d acks before timeout", ErrNoQuorum, votes, needed)
		case <-r.done:
			return fmt.Errorf("%w: replicator closed", ErrNoQuorum)
		}
	}
	r.quorumOK.Add(1)
	return nil
}

// peer returns addr's lane, creating it (and its worker) on first use.
// Returns nil once the replicator is closed.
func (r *Replicator) peer(addr string) *peer {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return nil
	}
	p, ok := r.peers[addr]
	if !ok {
		p = &peer{addr: addr, q: make(chan replJob, r.opts.QueueDepth)}
		r.peers[addr] = p
		r.wg.Add(1)
		go r.worker(p)
	}
	return p
}

// worker drains one peer's queue over a lazily-dialed connection. It
// exits when the replicator closes; a send error tears the connection
// down so the next job redials (a crashed peer that revives is picked
// up without external coordination).
func (r *Replicator) worker(p *peer) {
	defer r.wg.Done()
	var conn ReplConn
	defer func() {
		if conn != nil {
			conn.Close() //nolint:kv3d -- worker teardown; the peer link's close error carries no signal
		}
	}()
	for {
		select {
		case <-r.done:
			return
		case job := <-p.q:
			err := r.send(&conn, p.addr, job)
			if job.ack != nil {
				job.ack <- err // buffered per fan-out; never blocks
				if err != nil {
					r.flightInstant("repl.peer.error")
				}
			} else if err != nil {
				r.asyncErrors.Add(1)
				r.flightInstant("repl.peer.error")
			} else {
				r.asyncSent.Add(1)
			}
		}
	}
}

// send delivers one job, dialing when no connection is up. Replica
// frames carry ReplLocal so the receiver never re-replicates.
func (r *Replicator) send(conn *ReplConn, addr string, job replJob) error {
	if *conn == nil {
		c, err := r.opts.Dial(addr)
		if err != nil {
			return err
		}
		*conn = c
	}
	var err error
	switch job.kind {
	case replDelete:
		err = (*conn).DeleteWithMode(job.key, protocol.ReplLocal)
	case replTouch:
		err = (*conn).TouchWithMode(job.key, job.exptime, protocol.ReplLocal)
	case replFlush:
		err = (*conn).FlushWithMode(job.exptime, protocol.ReplLocal)
	default:
		err = (*conn).SetWithMode(job.key, job.value, job.flags, job.exptime, protocol.ReplLocal)
	}
	if err != nil {
		// Drop the connection so the next job redials instead of writing
		// into a possibly-dead socket. For the rare protocol-level answer
		// this costs one spurious redial; distinguishing it would need
		// the kvclient error taxonomy, which kvserver cannot import.
		(*conn).Close() //nolint:kv3d -- already failing; the close error of a broken peer link carries no signal
		*conn = nil
	}
	return err
}

func (r *Replicator) flightInstant(name string) {
	if r.opts.Flight.Enabled() && r.opts.NowNanos != nil {
		r.opts.Flight.Instant(r.flightTrack, name, r.opts.NowNanos())
	}
}

// Close stops every peer worker and waits for them to exit. Queued
// async jobs not yet sent are dropped (counted).
func (r *Replicator) Close() error {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil
	}
	r.closed = true
	pending := 0
	for _, p := range r.peers {
		pending += len(p.q)
	}
	r.mu.Unlock()
	close(r.done)
	r.wg.Wait()
	if pending > 0 {
		r.asyncDropped.Add(uint64(pending))
	}
	return nil
}

// Drain blocks until every peer queue is empty and acknowledged or the
// timeout passes — the bounded-staleness knob tests lean on: after
// Drain, every async write issued before the call is on its replicas.
func (r *Replicator) Drain(timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		r.mu.Lock()
		pending := 0
		for _, p := range r.peers {
			pending += len(p.q)
		}
		r.mu.Unlock()
		if pending == 0 {
			// Queues empty; in-flight sends (at most one per worker)
			// settle within one op timeout, which the caller's timeout
			// budget must cover. One final poll tick gives workers time
			// to finish the job they hold.
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("kvserver: replication drain timed out with %d queued", pending)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// Probes exports the live.repl.* counters.
func (r *Replicator) Probes() []obs.Probe {
	return []obs.Probe{
		{Name: "live.repl.async.queued", Value: float64(r.asyncQueued.Load())},
		{Name: "live.repl.async.sent", Value: float64(r.asyncSent.Load())},
		{Name: "live.repl.async.errors", Value: float64(r.asyncErrors.Load())},
		{Name: "live.repl.async.dropped", Value: float64(r.asyncDropped.Load())},
		{Name: "live.repl.quorum.ok", Value: float64(r.quorumOK.Load())},
		{Name: "live.repl.quorum.failed", Value: float64(r.quorumFailed.Load())},
		{Name: "live.repl.quorum.acks", Value: float64(r.quorumAcks.Load())},
	}
}
