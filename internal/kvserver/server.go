// Package kvserver runs a memcached-compatible TCP server on top of
// kvstore and protocol. One goroutine per connection, graceful shutdown,
// connection accounting.
package kvserver

import (
	"bufio"
	"errors"
	"io"
	"log"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"kv3d/internal/kvstore"
	"kv3d/internal/obs"
	"kv3d/internal/protocol"
	"kv3d/internal/sim"
)

// Options tune server-level limits. The zero value means unlimited.
type Options struct {
	// MaxConns caps simultaneous connections; further accepts receive a
	// busy line and are closed promptly (memcached's -c, except the
	// refusal is explicit rather than a silent close).
	MaxConns int
	// MaxInflight caps concurrently executing requests across all
	// connections. Excess commands are answered "SERVER_ERROR busy"
	// (StatusBusy on the binary protocol) instead of queueing without
	// bound — the server sheds load rather than silently degrading.
	MaxInflight int
	// IdleTimeout closes connections with no traffic for this long.
	IdleTimeout time.Duration
	// Batched enables the event-driven batched datapath: sessions hand
	// parsed ops to a store-level coalescer that merges concurrently
	// submitted requests into shard-ordered GetBatch/SetBatch rounds,
	// and defer their Flush until the connection's input drains — one
	// write syscall per pipelined burst instead of one per op.
	Batched bool
	// NowNanos is the clock used to time per-op latency, as a typed
	// nanosecond count. Nil selects the wall clock; tests inject a
	// fake to get deterministic histograms.
	NowNanos func() sim.Ns
	// Flight, when set, records sampled per-op phase spans and server
	// lifecycle events into the ring. Timestamps come from NowNanos, so
	// a fake clock makes the recording deterministic.
	Flight *obs.FlightRecorder
	// FlightEvery samples one op in every FlightEvery per session
	// (DefaultFlightEvery when <= 0). 1 traces every op.
	FlightEvery int
	// Repl, when set, receives every successful local write for replica
	// fan-out (usually a *Replicator; the interface keeps tests free to
	// fake it). The server does not own it — the caller Closes it after
	// the server stops.
	Repl protocol.Replicator
	// Migrator, when set, contributes live.migrate.* counters to the
	// server's probes. Like Repl it is caller-owned: the caller Closes
	// it after the server stops.
	Migrator *Migrator
}

// Server accepts memcached protocol connections and serves a Store.
type Server struct {
	store *kvstore.Store
	opts  Options
	ln    net.Listener
	log   *log.Logger

	mu       sync.Mutex
	conns    map[net.Conn]struct{} //kv3d:guardedby mu
	closed   bool                  //kv3d:guardedby mu
	draining bool                  //kv3d:guardedby mu

	wg sync.WaitGroup
	// rejectWg tracks the short-lived goroutines that write busy
	// refusals to turned-away connections — separate from wg so the
	// drain in Shutdown waits only on real handlers.
	rejectWg sync.WaitGroup
	accepted atomic.Uint64
	rejected atomic.Uint64
	active   atomic.Int64
	// metricsWriteErrors counts /metrics responses that failed mid-write
	// (client gone, connection reset): the scrape was truncated.
	metricsWriteErrors atomic.Uint64

	ops      *OpMetrics
	gate     *inflightGate
	nowNanos func() sim.Ns
	// coal is the shared request coalescer, nil unless Options.Batched;
	// all sessions submit through it so concurrent ops merge into
	// multi-key store rounds.
	coal *kvstore.Coalescer
	// flight is nil unless Options.Flight was set; its own fields are
	// immutable after construction and every recorder call is
	// internally synchronized.
	flight *serverFlight
	// telemetry is nil until StartTelemetry; guarded by mu.
	telemetry *Telemetry //kv3d:guardedby mu
}

// inflightGate is a non-blocking semaphore capping concurrently
// executing requests; it implements protocol.Gate and counts its own
// refusals.
type inflightGate struct {
	sem chan struct{}
	ops *OpMetrics
}

func newInflightGate(n int, ops *OpMetrics) *inflightGate {
	return &inflightGate{sem: make(chan struct{}, n), ops: ops}
}

func (g *inflightGate) TryAcquire() bool {
	select {
	case g.sem <- struct{}{}:
		return true
	default:
		g.ops.Reject(RejectBusy)
		return false
	}
}

func (g *inflightGate) Release() { <-g.sem }

// New creates a server for the given store. logger may be nil to
// silence per-connection errors.
func New(store *kvstore.Store, logger *log.Logger) *Server {
	return NewWithOptions(store, logger, Options{})
}

// NewWithOptions creates a server with explicit limits.
func NewWithOptions(store *kvstore.Store, logger *log.Logger, opts Options) *Server {
	now := opts.NowNanos
	if now == nil {
		now = func() sim.Ns { return sim.Ns(time.Now().UnixNano()) }
	}
	s := &Server{
		store:    store,
		log:      logger,
		opts:     opts,
		conns:    make(map[net.Conn]struct{}),
		ops:      NewOpMetrics(),
		nowNanos: now,
	}
	if opts.MaxInflight > 0 {
		s.gate = newInflightGate(opts.MaxInflight, s.ops)
	}
	if opts.Flight != nil {
		s.flight = newServerFlight(opts.Flight, opts.FlightEvery)
	}
	if opts.Batched {
		copts := kvstore.CoalescerOptions{}
		if s.flight != nil {
			copts.NowNanos = func() int64 { return int64(s.nowNanos()) }
			copts.OnRound = s.flight.batchRound
		}
		s.coal = kvstore.NewCoalescer(store, copts)
	}
	return s
}

// Coalescer exposes the shared batching core (nil unless
// Options.Batched), for tests and tools that read its round counters.
func (s *Server) Coalescer() *kvstore.Coalescer { return s.coal }

// Flight exposes the server's recorder (nil when recording is off) so
// tools can dump or merge its trace.
func (s *Server) Flight() *obs.FlightRecorder {
	if s.flight == nil {
		return nil
	}
	return s.flight.rec
}

// Listen binds the address (e.g. "127.0.0.1:11211"). Use port :0 for an
// ephemeral port; Addr reports the bound address.
func (s *Server) Listen(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	s.ln = ln
	return nil
}

// SetReplicator installs the replica fan-out hook after construction.
// It exists for a wiring-order reason: a Replicator's Self is the
// node's serving address, which an ephemeral-port server only knows
// after Listen — so the caller listens, builds the Replicator from
// Addr, then installs it. Call before Serve; sessions read the hook
// when their connection arrives.
func (s *Server) SetReplicator(r protocol.Replicator) { s.opts.Repl = r }

// SetMigrator attaches a caller-owned Migrator so its live.migrate.*
// counters surface through Probes, under the same call-before-Serve
// contract as SetReplicator.
func (s *Server) SetMigrator(m *Migrator) { s.opts.Migrator = m }

// Addr returns the listener address, or nil before Listen.
func (s *Server) Addr() net.Addr {
	if s.ln == nil {
		return nil
	}
	return s.ln.Addr()
}

// Serve accepts connections until Close. It returns nil after a clean
// shutdown.
func (s *Server) Serve() error {
	if s.ln == nil {
		return errors.New("kvserver: Serve before Listen")
	}
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return nil
		}
		if s.draining {
			s.mu.Unlock()
			s.rejectConn(conn, RejectDraining)
			continue
		}
		if s.opts.MaxConns > 0 && len(s.conns) >= s.opts.MaxConns {
			s.mu.Unlock()
			s.rejectConn(conn, RejectMaxConns)
			continue
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		s.accepted.Add(1)
		s.active.Add(1)
		go s.handle(conn)
	}
}

// ServeOn serves on a caller-provided listener instead of one bound by
// Listen — harnesses wrap a listener (e.g. with fault injection) and
// hand it over.
func (s *Server) ServeOn(ln net.Listener) error {
	s.ln = ln
	return s.Serve()
}

// rejectConn refuses a just-accepted connection with an explicit busy
// line so the client fails fast instead of diagnosing a silent close.
// The write runs in its own goroutine under a deadline, so a stalled
// peer can neither pin the accept loop nor leak the goroutine.
func (s *Server) rejectConn(conn net.Conn, reason RejectReason) {
	s.rejected.Add(1)
	s.ops.Reject(reason)
	if s.flight != nil {
		s.flight.reject(reason, s.nowNanos())
	}
	s.rejectWg.Add(1)
	go func() {
		defer s.rejectWg.Done()
		conn.SetWriteDeadline(time.Now().Add(time.Second)) //nolint:kv3d -- best-effort farewell: a failed deadline arm just makes the write fail instead
		io.WriteString(conn, "SERVER_ERROR busy\r\n")      //nolint:kv3d -- best-effort farewell to a refused client; nothing to do if it fails
		conn.Close()                                       //nolint:kv3d -- the refusal is complete; the close error of a turned-away conn carries no signal
	}()
}

func (s *Server) handle(conn net.Conn) {
	defer s.wg.Done()
	if s.flight != nil {
		ts := s.nowNanos()
		s.flight.connOpen(ts)
		s.flight.activeConns(ts, s.active.Load())
	}
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		n := s.active.Add(-1)
		if s.flight != nil {
			ts := s.nowNanos()
			s.flight.connClose(ts)
			s.flight.activeConns(ts, n)
		}
	}()
	var rw io.ReadWriter = conn
	if s.opts.IdleTimeout > 0 {
		rw = &deadlineRW{conn: conn, timeout: s.opts.IdleTimeout}
	}
	// Sniff the first byte: 0x80 selects the binary protocol, anything
	// else the ASCII protocol — the same dual-listener behaviour as
	// memcached's auto-negotiation.
	br := bufio.NewReaderSize(rw, 64<<10)
	bw := bufio.NewWriterSize(rw, 64<<10)
	first, err := br.Peek(1)
	if err != nil {
		return // connection closed before any request
	}
	if first[0] == protocol.MagicRequest {
		sess := protocol.NewBinarySessionBuffered(s.store, br, bw)
		sess.SetObserver(s.ops, s.nowNanos)
		if s.gate != nil {
			sess.SetGate(s.gate)
		}
		if s.flight != nil {
			sess.SetFlight(&s.flight.binarySink, s.flight.every)
		}
		if s.opts.Repl != nil {
			sess.SetReplicator(s.opts.Repl)
		}
		if s.coal != nil {
			sess.SetCoalescer(s.coal)
		}
		err = sess.Serve()
	} else {
		sess := protocol.NewSessionBuffered(s.store, br, bw)
		sess.SetObserver(s.ops, s.nowNanos)
		if s.gate != nil {
			sess.SetGate(s.gate)
		}
		if s.flight != nil {
			sess.SetFlight(&s.flight.asciiSink, s.flight.every)
		}
		if s.opts.Repl != nil {
			sess.SetReplicator(s.opts.Repl)
		}
		if s.coal != nil {
			sess.SetCoalescer(s.coal)
		}
		err = sess.Serve()
	}
	if err != nil && s.log != nil {
		s.log.Printf("kvserver: connection %s: %v", conn.RemoteAddr(), err)
	}
}

// Close stops accepting, closes all connections, and waits for handlers.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	for c := range s.conns {
		c.Close()
	}
	tel := s.telemetry
	s.telemetry = nil
	s.mu.Unlock()
	if s.flight != nil {
		s.flight.serverClose(s.nowNanos())
	}
	var err error
	if s.ln != nil {
		err = s.ln.Close()
	}
	s.wg.Wait()
	s.rejectWg.Wait()
	tel.Stop()
	return err
}

// Shutdown drains gracefully: new connections are refused with a busy
// line while established ones keep being served, for up to timeout;
// whatever remains is then closed. It returns nil if the drain emptied
// the server before the deadline.
func (s *Server) Shutdown(timeout time.Duration) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.draining = true
	s.mu.Unlock()
	if s.flight != nil {
		s.flight.drainBegin(s.nowNanos())
	}
	// wg.Add for handlers happens under mu before draining was set, so
	// this waiter cannot race a late registration.
	drained := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(drained)
	}()
	var err error
	select {
	case <-drained:
	case <-time.After(timeout):
		err = errors.New("kvserver: drain deadline exceeded")
	}
	if s.flight != nil {
		s.flight.drainEnd(s.nowNanos())
	}
	if cerr := s.Close(); cerr != nil && err == nil {
		err = cerr
	}
	return err
}

// deadlineRW arms an idle deadline before every read and write so a
// silent connection eventually errors out and closes.
type deadlineRW struct {
	conn    net.Conn
	timeout time.Duration
}

func (d *deadlineRW) Read(p []byte) (int, error) {
	if err := d.conn.SetReadDeadline(time.Now().Add(d.timeout)); err != nil {
		return 0, err
	}
	return d.conn.Read(p)
}

func (d *deadlineRW) Write(p []byte) (int, error) {
	if err := d.conn.SetWriteDeadline(time.Now().Add(d.timeout)); err != nil {
		return 0, err
	}
	return d.conn.Write(p)
}

// Accepted reports the total number of accepted connections.
func (s *Server) Accepted() uint64 { return s.accepted.Load() }

// Rejected reports connections refused by the MaxConns limit.
func (s *Server) Rejected() uint64 { return s.rejected.Load() }

// Active reports currently open connections.
func (s *Server) Active() int64 { return s.active.Load() }

// Store exposes the underlying store (for stats in tools).
func (s *Server) Store() *kvstore.Store { return s.store }
