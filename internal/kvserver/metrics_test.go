package kvserver

import (
	"io"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"

	"kv3d/internal/kvclient"
	"kv3d/internal/kvstore"
	"kv3d/internal/protocol"
	"kv3d/internal/sim"
	"kv3d/internal/testutil"
)

// fakeNanos is a deterministic clock: every read advances by 1µs, so
// each timed operation records exactly 1000ns.
func fakeNanos() func() sim.Ns {
	var n atomic.Int64
	return func() sim.Ns { return sim.Ns(n.Add(1000)) }
}

func startMetricsServer(t *testing.T) (*Server, string) {
	t.Helper()
	testutil.CheckGoroutines(t)
	st, err := kvstore.New(kvstore.DefaultConfig(32 << 20))
	if err != nil {
		t.Fatal(err)
	}
	srv := NewWithOptions(st, nil, Options{NowNanos: fakeNanos()})
	if err := srv.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	go srv.Serve()
	t.Cleanup(func() { srv.Close() })
	return srv, srv.Addr().String()
}

func TestMetricsEndpoint(t *testing.T) {
	srv, addr := startMetricsServer(t)
	c, err := kvclient.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Set("k", []byte("v"), 0, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Get("k"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Get("missing"); err == nil {
		t.Fatal("expected miss")
	}

	rr := httptest.NewRecorder()
	srv.MetricsHandler().ServeHTTP(rr, httptest.NewRequest("GET", "/metrics", nil))
	if rr.Code != 200 {
		t.Fatalf("status = %d", rr.Code)
	}
	if ct := rr.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type = %q", ct)
	}
	body, _ := io.ReadAll(rr.Body)
	text := string(body)
	for _, want := range []string{
		"kv3d_live_store_sets 1\n",
		"kv3d_live_store_get_hits 1\n",
		"kv3d_live_store_get_misses 1\n",
		"kv3d_live_server_conns_accepted 1\n",
		"kv3d_live_op_get_latency_ns_count 2\n",
		"kv3d_live_op_store_latency_ns_count 1\n",
		"# TYPE kv3d_live_store_curr_items gauge\n",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics output missing %q\n%s", want, text)
		}
	}
	// Slab occupancy for the class holding the one stored item.
	if !strings.Contains(text, "_used_chunks 1\n") {
		t.Errorf("no slab class shows a used chunk:\n%s", text)
	}
}

func TestMetricsProbesSorted(t *testing.T) {
	srv, _ := startMetricsServer(t)
	probes := srv.Probes()
	for i := 1; i < len(probes); i++ {
		if probes[i-1].Name >= probes[i].Name {
			t.Fatalf("probes not strictly sorted: %q before %q",
				probes[i-1].Name, probes[i].Name)
		}
	}
}

func TestOpMetricsDeterministicWithFakeClock(t *testing.T) {
	m := NewOpMetrics()
	clock := fakeNanos()
	for i := 0; i < 5; i++ {
		start := clock()
		m.ObserveOp(protocol.ClassGet, protocol.OutcomeOK, clock()-start)
	}
	s := m.Summary(protocol.ClassGet)
	if s.Count != 5 {
		t.Fatalf("count = %d", s.Count)
	}
	if s.Mean != 1000 {
		t.Fatalf("mean = %v, want exactly 1000 from the fake clock", s.Mean)
	}
	// Out-of-range classes fold into "other" rather than panicking, and
	// out-of-range outcomes fold into "error".
	m.ObserveOp(protocol.OpClass(99), protocol.Outcome(99), 5)
	if got := m.Summary(protocol.OpClass(-1)).Count; got != 1 {
		t.Fatalf("other count = %d", got)
	}
	if got := m.OutcomeSummary(protocol.ClassOther, protocol.OutcomeError).Count; got != 1 {
		t.Fatalf("other/error count = %d", got)
	}
	// The aggregate keeps counting across outcomes.
	m.ObserveOp(protocol.ClassGet, protocol.OutcomeBusy, 7)
	if got := m.Summary(protocol.ClassGet).Count; got != 6 {
		t.Fatalf("get aggregate count = %d, want 6 (5 ok + 1 busy)", got)
	}
	if got := m.OutcomeSummary(protocol.ClassGet, protocol.OutcomeBusy).Count; got != 1 {
		t.Fatalf("get busy count = %d", got)
	}
}

func TestUDPObserverWired(t *testing.T) {
	srv, _ := startMetricsServer(t)
	u, err := srv.ListenUDP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer u.Close()
	if u.ops != srv.ops {
		t.Fatal("UDP server does not share the TCP server's op metrics")
	}
}
