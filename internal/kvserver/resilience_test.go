package kvserver

import (
	"bufio"
	"errors"
	"io"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"kv3d/internal/kvclient"
	"kv3d/internal/kvstore"
	"kv3d/internal/testutil"
)

// TestMaxConnsRejectedPromptly pins the new refusal behaviour: a
// connection over the cap receives an explicit busy line and is closed
// promptly, and the rejection is classified in OpMetrics.
func TestMaxConnsRejectedPromptly(t *testing.T) {
	testutil.CheckGoroutines(t)
	st, _ := kvstore.New(kvstore.DefaultConfig(16 << 20))
	srv := NewWithOptions(st, nil, Options{MaxConns: 1})
	if err := srv.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	go srv.Serve()
	defer srv.Close()
	addr := srv.Addr().String()

	c1, err := kvclient.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()
	if err := c1.Set("a", []byte("1"), 0, 0); err != nil {
		t.Fatal(err)
	}

	raw, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	raw.SetReadDeadline(time.Now().Add(2 * time.Second))
	line, err := bufio.NewReader(raw).ReadString('\n')
	if err != nil {
		t.Fatalf("no busy line before close: %v", err)
	}
	if strings.TrimRight(line, "\r\n") != "SERVER_ERROR busy" {
		t.Fatalf("refusal line = %q", line)
	}
	// The connection is closed after the refusal, promptly.
	raw.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := raw.Read(make([]byte, 1)); err == nil {
		t.Fatal("rejected connection stayed open")
	}
	if srv.Rejected() == 0 {
		t.Fatal("rejected counter never bumped")
	}
	if srv.OpMetrics().Rejects(RejectMaxConns) == 0 {
		t.Fatal("reject reason max_conns not counted")
	}
	found := false
	for _, p := range srv.Probes() {
		if p.Name == "live.server.rejected.max_conns" && p.Value >= 1 {
			found = true
		}
	}
	if !found {
		t.Fatal("rejected.max_conns probe missing")
	}
}

// TestBusyRefusalIsRetryableClientSide ties the wire format to the
// client's classification: the refusal parses as kvclient.ErrBusy.
func TestBusyRefusalClassifiesAsErrBusy(t *testing.T) {
	testutil.CheckGoroutines(t)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		c, err := ln.Accept()
		if err != nil {
			return
		}
		defer c.Close()
		br := bufio.NewReader(c)
		br.ReadString('\n') // the get line
		io.WriteString(c, "SERVER_ERROR busy\r\n")
		br.ReadString('\n') // quit from Close
	}()
	c, err := kvclient.Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	_, err = c.Get("k")
	if !errors.Is(err, kvclient.ErrBusy) {
		t.Fatalf("err = %v, want ErrBusy", err)
	}
	if !errors.Is(err, kvclient.ErrServer) {
		t.Fatal("ErrBusy must still match ErrServer checks")
	}
}

// TestInflightCapShedsUnderLoad wires the gate end to end: one client
// wedges the only execution slot by not reading a large response (the
// server blocks mid-dispatch with the slot held), so a second client's
// request is answered busy instead of queueing.
func TestInflightCapShedsUnderLoad(t *testing.T) {
	st, _ := kvstore.New(kvstore.DefaultConfig(64 << 20))
	srv := NewWithOptions(st, nil, Options{MaxInflight: 1})
	if err := srv.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	go srv.Serve()
	defer srv.Close()
	addr := srv.Addr().String()

	big := make([]byte, 900<<10)
	seed, err := kvclient.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	if err := seed.Set("big", big, 0, 0); err != nil {
		t.Fatal(err)
	}
	seed.Close()

	// Wedge: pipeline many gets of the value and never read. The
	// server's response writes overflow every buffer in the path and
	// block inside dispatch, holding the in-flight slot.
	wedge, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer wedge.Close()
	go io.WriteString(wedge, strings.Repeat("get big\r\n", 64))

	probe, err := kvclient.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer probe.Close()
	deadline := time.Now().Add(5 * time.Second)
	for {
		_, err := probe.Get("absent")
		if errors.Is(err, kvclient.ErrBusy) {
			break
		}
		if err != nil && !errors.Is(err, kvclient.ErrNotFound) {
			t.Fatalf("probe error = %v", err)
		}
		if time.Now().After(deadline) {
			t.Fatal("in-flight cap never shed a request")
		}
	}
	if srv.OpMetrics().Rejects(RejectBusy) == 0 {
		t.Fatal("reject reason busy not counted")
	}
}

// TestShutdownDrains: established connections finish their work during
// the drain window while new arrivals are refused; Shutdown returns nil
// when the server empties before the deadline.
func TestShutdownDrains(t *testing.T) {
	testutil.CheckGoroutines(t)
	st, _ := kvstore.New(kvstore.DefaultConfig(16 << 20))
	srv := NewWithOptions(st, nil, Options{})
	if err := srv.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	go srv.Serve()
	addr := srv.Addr().String()

	c, err := kvclient.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Set("k", []byte("v"), 0, 0); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	wg.Add(1)
	shutdownErr := make(chan error, 1)
	go func() {
		defer wg.Done()
		shutdownErr <- srv.Shutdown(5 * time.Second)
	}()

	// Wait until the drain is refusing new connections.
	deadline := time.Now().Add(2 * time.Second)
	for srv.OpMetrics().Rejects(RejectDraining) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("draining refusal never observed")
		}
		if raw, err := net.Dial("tcp", addr); err == nil {
			raw.SetReadDeadline(time.Now().Add(time.Second))
			io.ReadAll(raw)
			raw.Close()
		}
		time.Sleep(5 * time.Millisecond)
	}

	// The established connection still works mid-drain...
	if _, err := c.Get("k"); err != nil {
		t.Fatalf("established conn broken during drain: %v", err)
	}
	// ...and once it leaves, the drain completes cleanly.
	c.Close()
	wg.Wait()
	if err := <-shutdownErr; err != nil {
		t.Fatalf("drain should have emptied in time: %v", err)
	}
}

// TestShutdownDeadlineCutsStragglers: a connection that never leaves is
// cut when the drain deadline passes, and Shutdown reports it.
func TestShutdownDeadlineCutsStragglers(t *testing.T) {
	testutil.CheckGoroutines(t)
	st, _ := kvstore.New(kvstore.DefaultConfig(16 << 20))
	srv := NewWithOptions(st, nil, Options{})
	if err := srv.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	go srv.Serve()

	c, err := kvclient.Dial(srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Set("k", []byte("v"), 0, 0); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	err = srv.Shutdown(50 * time.Millisecond)
	if err == nil {
		t.Fatal("Shutdown with a lingering connection should report the missed deadline")
	}
	if took := time.Since(start); took > 3*time.Second {
		t.Fatalf("Shutdown took %v; the deadline did not bound the drain", took)
	}
	if srv.Active() != 0 {
		t.Fatalf("active = %d after Shutdown", srv.Active())
	}
}

// TestServeOn serves on a caller-provided listener.
func TestServeOn(t *testing.T) {
	testutil.CheckGoroutines(t)
	st, _ := kvstore.New(kvstore.DefaultConfig(16 << 20))
	srv := New(st, nil)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.ServeOn(ln)
	defer srv.Close()
	c, err := kvclient.Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Set("k", []byte("v"), 0, 0); err != nil {
		t.Fatal(err)
	}
	if it, err := c.Get("k"); err != nil || string(it.Value) != "v" {
		t.Fatalf("get = %+v, %v", it, err)
	}
}
