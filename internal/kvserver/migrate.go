package kvserver

// Background key-range migration: when membership changes move a key
// range to another node (a join taking over ranges, or this node
// preparing a graceful leave), a MigrationStream walks the local store
// and pushes the moving keys to the new owner over the plain binary
// protocol — chunked, rate-limited, resumable, and tied to a stop
// signal, so a shutdown mid-handoff interrupts cleanly and a successor
// stream can resume from the reported cursor.
//
// Values are re-read at send time (the listing is only a snapshot of
// *keys*), so a key mutated after the stream started moves with its
// current value, and a key deleted meanwhile is simply skipped. The
// receiver applies chunks with Add semantics (see migframe.go), so
// migration never clobbers a value written to the target after
// ownership moved: between the two, the newest write wins.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"kv3d/internal/kvstore"
	"kv3d/internal/obs"
	"kv3d/internal/protocol"
)

// ErrMigrationStopped reports a stream interrupted by Close before it
// finished; Cursor() says where a successor should resume.
var ErrMigrationStopped = errors.New("kvserver: migration stopped")

// StreamOptions describe one key-range handoff.
type StreamOptions struct {
	// Target is the receiving node's serving address.
	Target string
	// Owned selects the keys to move (nil moves every key) — typically
	// "the new membership places this key on Target".
	Owned func(key string) bool
	// ChunkKeys is the number of keys per pipelined chunk (default 64).
	ChunkKeys int
	// RateKeysPerSec caps the streaming rate (0 = unlimited): the
	// background handoff must not starve foreground traffic.
	RateKeysPerSec int
	// StartAt resumes a prior stream: that many keys of the (sorted,
	// deterministic) listing are skipped before streaming begins.
	StartAt int
}

// MigOptions configure a Migrator.
type MigOptions struct {
	// Store is the local store keys are read from.
	Store *kvstore.Store
	// Dial opens the transport to a target (default: 5s TCP dial).
	Dial func(addr string) (net.Conn, error)
	// OpTimeout bounds each chunk write and barrier read (default 5s).
	OpTimeout time.Duration
}

// Migrator runs migration streams and owns their lifecycle: Close
// stops every stream and joins its goroutine.
type Migrator struct {
	opts MigOptions

	mu      sync.Mutex
	streams []*MigrationStream //kv3d:guardedby mu
	closed  bool               //kv3d:guardedby mu

	done chan struct{}
	wg   sync.WaitGroup

	// live.migrate.* counters.
	keysSent     atomic.Uint64
	keysSkipped  atomic.Uint64 // target already had a newer value
	keysMissing  atomic.Uint64 // deleted between listing and send
	chunks       atomic.Uint64
	sendErrors   atomic.Uint64
	completed    atomic.Uint64
	interrupted  atomic.Uint64
	resumed      atomic.Uint64
	activeStream atomic.Int64
}

// NewMigrator builds a migrator over the local store.
func NewMigrator(opts MigOptions) (*Migrator, error) {
	if opts.Store == nil {
		return nil, fmt.Errorf("kvserver: migrator needs a store")
	}
	if opts.OpTimeout <= 0 {
		opts.OpTimeout = 5 * time.Second
	}
	if opts.Dial == nil {
		opts.Dial = func(addr string) (net.Conn, error) {
			return net.DialTimeout("tcp", addr, 5*time.Second)
		}
	}
	return &Migrator{opts: opts, done: make(chan struct{})}, nil
}

// MigrationStream is one in-flight handoff.
type MigrationStream struct {
	opts StreamOptions
	m    *Migrator

	// cursor counts keys disposed of (sent, skipped, or found missing)
	// since the start of the listing, including the StartAt skip — the
	// resume point for a successor stream.
	cursor atomic.Int64

	doneOnce sync.Once
	done     chan struct{} // closed to stop this stream alone
	finished chan struct{} // closed when the goroutine exits
	err      error         // write-once before finished closes
	total    int
}

// Cursor reports how many keys of the listing have been disposed of —
// pass it as StartAt to resume after an interruption.
func (st *MigrationStream) Cursor() int { return int(st.cursor.Load()) }

// Total reports the listing size (keys to move), fixed at start.
func (st *MigrationStream) Total() int { return st.total }

// Done is closed when the stream has finished (successfully or not).
func (st *MigrationStream) Done() <-chan struct{} { return st.finished }

// Err reports the stream outcome once Done is closed: nil on
// completion, ErrMigrationStopped on interruption, or a transport
// error.
func (st *MigrationStream) Err() error {
	<-st.finished
	return st.err
}

// Stop interrupts this stream without touching its siblings and waits
// for its goroutine to exit.
func (st *MigrationStream) Stop() {
	st.doneOnce.Do(func() { close(st.done) })
	<-st.finished
}

// Wait blocks until the stream finishes on its own (or is stopped).
func (st *MigrationStream) Wait() error { return st.Err() }

// Start lists the keys to move and launches the stream goroutine.
func (m *Migrator) Start(opts StreamOptions) (*MigrationStream, error) {
	if opts.Target == "" {
		return nil, fmt.Errorf("kvserver: migration stream needs a target")
	}
	if opts.ChunkKeys <= 0 {
		opts.ChunkKeys = 64
	}
	// Deterministic listing: sorted, so StartAt cursors mean the same
	// thing across a stop/resume pair as long as the keyspace has not
	// churned out from under them (new keys land on re-listing; the
	// re-read at send time handles mutations either way).
	keys := m.opts.Store.AppendKeys(nil)
	sort.Strings(keys)
	if opts.Owned != nil {
		kept := keys[:0]
		for _, k := range keys {
			if opts.Owned(k) {
				kept = append(kept, k)
			}
		}
		keys = kept
	}
	st := &MigrationStream{
		opts:     opts,
		m:        m,
		done:     make(chan struct{}),
		finished: make(chan struct{}),
		total:    len(keys),
	}
	if opts.StartAt > 0 {
		if opts.StartAt > len(keys) {
			opts.StartAt = len(keys)
			st.opts.StartAt = len(keys)
		}
		st.cursor.Store(int64(opts.StartAt))
		m.resumed.Add(1)
	}
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil, fmt.Errorf("kvserver: migrator closed")
	}
	m.streams = append(m.streams, st)
	m.wg.Add(1)
	m.mu.Unlock()
	m.activeStream.Add(1)
	go st.run(keys[opts.StartAt:])
	return st, nil
}

// Close interrupts every stream and joins their goroutines. Streams
// that already completed are unaffected; interrupted ones report
// ErrMigrationStopped.
func (m *Migrator) Close() error {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil
	}
	m.closed = true
	m.mu.Unlock()
	close(m.done)
	m.wg.Wait()
	return nil
}

// run streams the listed keys; it owns the connection and always
// closes it on the way out.
func (st *MigrationStream) run(keys []string) {
	m := st.m
	defer m.wg.Done()
	defer m.activeStream.Add(-1)
	var conn net.Conn
	defer func() {
		if conn != nil {
			conn.Close() //nolint:kv3d -- stream teardown; the handoff link's close error carries no signal
		}
		close(st.finished)
	}()

	var chunkBuf []byte
	entries := make([]MigEntry, 0, st.opts.ChunkKeys)
	var barrier uint32
	for len(keys) > 0 {
		select {
		case <-st.done:
			m.interrupted.Add(1)
			st.err = ErrMigrationStopped
			return
		case <-m.done:
			m.interrupted.Add(1)
			st.err = ErrMigrationStopped
			return
		default:
		}
		n := st.opts.ChunkKeys
		if n > len(keys) {
			n = len(keys)
		}
		batch := keys[:n]
		keys = keys[n:]

		// Re-read at send time: the listing is a key snapshot, values
		// move at their current state, deleted keys are dropped.
		entries = entries[:0]
		for _, k := range batch {
			e, exp, ok := m.opts.Store.GetWithExpiry(k)
			if !ok {
				m.keysMissing.Add(1)
				continue
			}
			entries = append(entries, MigEntry{
				Key: k, Value: e.Value, Flags: e.Flags, Exptime: exp,
			})
		}
		if len(entries) > 0 {
			if conn == nil {
				c, err := m.opts.Dial(st.opts.Target)
				if err != nil {
					m.sendErrors.Add(1)
					st.err = err
					return
				}
				conn = c
			}
			barrier++
			chunkBuf = AppendChunk(chunkBuf[:0], entries, barrier)
			if err := st.sendChunk(conn, chunkBuf, barrier, len(entries)); err != nil {
				m.sendErrors.Add(1)
				st.err = err
				return
			}
			m.chunks.Add(1)
		}
		st.cursor.Add(int64(n))

		// Rate limit, interruptibly: the sleep budget for this chunk is
		// keys/rate; a stop signal cuts it short.
		if st.opts.RateKeysPerSec > 0 {
			delay := time.Duration(n) * time.Second / time.Duration(st.opts.RateKeysPerSec)
			timer := time.NewTimer(delay)
			select {
			case <-timer.C:
			case <-st.done:
				timer.Stop()
				m.interrupted.Add(1)
				st.err = ErrMigrationStopped
				return
			case <-m.done:
				timer.Stop()
				m.interrupted.Add(1)
				st.err = ErrMigrationStopped
				return
			}
		}
	}
	m.completed.Add(1)
}

// sendChunk writes one chunk and reads responses up to its barrier.
// Quiet adds respond only on failure; StatusKeyExists means the target
// already holds a newer value (benign — Add semantics working as
// intended), anything else counts as a send error but does not abort
// the chunk.
func (st *MigrationStream) sendChunk(conn net.Conn, chunk []byte, barrier uint32, sent int) error {
	m := st.m
	if err := conn.SetWriteDeadline(time.Now().Add(m.opts.OpTimeout)); err != nil {
		return err
	}
	if _, err := conn.Write(chunk); err != nil {
		return err
	}
	exists, failed := 0, 0
	for {
		if err := conn.SetReadDeadline(time.Now().Add(m.opts.OpTimeout)); err != nil {
			return err
		}
		var hdr [migHeaderLen]byte
		if _, err := io.ReadFull(conn, hdr[:]); err != nil {
			return err
		}
		if hdr[0] != protocol.MagicResponse {
			return fmt.Errorf("kvserver: migration response magic %#02x", hdr[0])
		}
		bodyLen := int(binary.BigEndian.Uint32(hdr[8:]))
		if bodyLen < 0 || bodyLen > maxMigValue {
			return fmt.Errorf("kvserver: migration response body %d out of range", bodyLen)
		}
		if bodyLen > 0 {
			if _, err := io.CopyN(io.Discard, conn, int64(bodyLen)); err != nil {
				return err
			}
		}
		opcode := hdr[1]
		status := binary.BigEndian.Uint16(hdr[6:])
		opaque := binary.BigEndian.Uint32(hdr[12:])
		if opcode == protocol.OpNoop {
			if opaque != barrier {
				return fmt.Errorf("kvserver: migration barrier opaque %d, want %d (stream desynchronized)", opaque, barrier)
			}
			m.keysSent.Add(uint64(sent - exists - failed))
			m.keysSkipped.Add(uint64(exists))
			if failed > 0 {
				m.sendErrors.Add(uint64(failed))
			}
			return nil
		}
		// An error response for one quiet add within the chunk. The
		// target reports an already-present key as NotStored (add
		// semantics); KeyExists covers receivers that answer in stock
		// memcached dialect. Both mean "the target has a newer value" —
		// benign, counted as a skip.
		if status == protocol.StatusKeyExists || status == protocol.StatusNotStored {
			exists++
		} else {
			failed++
		}
	}
}

// Probes exports the live.migrate.* counters.
func (m *Migrator) Probes() []obs.Probe {
	return []obs.Probe{
		{Name: "live.migrate.keys_sent", Value: float64(m.keysSent.Load())},
		{Name: "live.migrate.keys_skipped_exists", Value: float64(m.keysSkipped.Load())},
		{Name: "live.migrate.keys_missing", Value: float64(m.keysMissing.Load())},
		{Name: "live.migrate.chunks", Value: float64(m.chunks.Load())},
		{Name: "live.migrate.send_errors", Value: float64(m.sendErrors.Load())},
		{Name: "live.migrate.streams_completed", Value: float64(m.completed.Load())},
		{Name: "live.migrate.streams_interrupted", Value: float64(m.interrupted.Load())},
		{Name: "live.migrate.streams_resumed", Value: float64(m.resumed.Load())},
		{Name: "live.migrate.streams_active", Value: float64(m.activeStream.Load())},
	}
}
