package kvserver

import (
	"sync"
	"testing"

	"kv3d/internal/protocol"
	"kv3d/internal/sim"
)

// TestOpMetricsConcurrentObserveRejectSnapshot is the -race regression
// for the OpMetrics contracts syncguard pins: hists sits behind mu
// (kv3d:guardedby) while the reject counters are a lock-free atomic
// array that must never be read plainly. Observers, rejecters, and
// snapshot readers hammer one aggregator from separate goroutines; the
// race detector proves the split discipline holds, and the final
// counts prove nothing was lost to it.
func TestOpMetricsConcurrentObserveRejectSnapshot(t *testing.T) {
	m := NewOpMetrics()
	const (
		workers = 8
		perW    = 500
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perW; i++ {
				m.ObserveOp(protocol.OpClass(i%int(protocol.NumOpClasses)), protocol.Outcome(i%int(protocol.NumOutcomes)), sim.Ns(100+i))
				m.Reject(RejectReason(i % int(numRejectReasons)))
			}
		}(w)
	}
	// Snapshot readers overlap the writers: Summary and Probes take mu,
	// Rejects reads the atomics.
	readers := make(chan struct{})
	go func() {
		defer close(readers)
		for i := 0; i < 200; i++ {
			_ = m.Summary(protocol.ClassGet)
			_ = m.Probes()
			_ = m.Rejects(RejectBusy)
		}
	}()
	wg.Wait()
	<-readers

	var observed uint64
	for c := protocol.OpClass(0); c < protocol.NumOpClasses; c++ {
		observed += m.Summary(c).Count
	}
	if want := uint64(workers * perW); observed != want {
		t.Fatalf("observed %d ops across classes, want %d", observed, want)
	}
	var rejected uint64
	for r := RejectReason(0); r < numRejectReasons; r++ {
		rejected += m.Rejects(r)
	}
	if want := uint64(workers * perW); rejected != want {
		t.Fatalf("counted %d rejects, want %d", rejected, want)
	}
}
