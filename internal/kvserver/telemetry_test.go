package kvserver

import (
	"encoding/json"
	"io"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"kv3d/internal/kvstore"
	"kv3d/internal/obs"
	"kv3d/internal/testutil"
)

// TestTelemetrySamplerProbesAndNoLeak proves the sampler exports
// live.runtime.* probes and that Stop (and Server.Close) release its
// goroutine — the leak check fails the test otherwise.
func TestTelemetrySamplerProbesAndNoLeak(t *testing.T) {
	testutil.CheckGoroutines(t)
	st, err := kvstore.New(kvstore.DefaultConfig(32 << 20))
	if err != nil {
		t.Fatal(err)
	}
	srv := NewWithOptions(st, nil, Options{NowNanos: fakeNanos()})
	tel := srv.StartTelemetry(10 * time.Millisecond)
	if srv.Telemetry() != tel {
		t.Fatal("Telemetry() does not return the started sampler")
	}

	// The immediate first sample means probes are live without waiting a
	// full period.
	probes := srv.Probes()
	found := map[string]bool{}
	for _, p := range probes {
		if strings.HasPrefix(p.Name, "live.runtime.") {
			found[p.Name] = true
		}
	}
	for _, want := range []string{
		"live.runtime.heap_alloc_bytes",
		"live.runtime.gc_pause_total_ns",
		"live.runtime.goroutines",
		"live.runtime.sched_lag_ns",
		"live.runtime.samples",
	} {
		if !found[want] {
			t.Errorf("probes missing %s (have %v)", want, found)
		}
	}

	// Wait for at least one ticker-driven sample so the lag path runs.
	deadline := time.Now().Add(2 * time.Second)
	for {
		tel.mu.Lock()
		n := tel.snap.samples
		tel.mu.Unlock()
		if n >= 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("sampler never ticked")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Restarting replaces (and stops) the previous sampler; Close stops
	// the replacement. CheckGoroutines verifies both are gone.
	srv.StartTelemetry(time.Hour)
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	// Stop on an already-stopped sampler (and nil) must be safe.
	tel.Stop()
	var nilTel *Telemetry
	nilTel.Stop()
}

// TestDebugMuxEndpoints covers the opt-in pprof and trace-dump
// endpoints over httptest.
func TestDebugMuxEndpoints(t *testing.T) {
	testutil.CheckGoroutines(t)
	st, err := kvstore.New(kvstore.DefaultConfig(32 << 20))
	if err != nil {
		t.Fatal(err)
	}
	rec := obs.NewFlightRecorder("server", 64)
	srv := NewWithOptions(st, nil, Options{NowNanos: fakeNanos(), Flight: rec, FlightEvery: 1})
	defer srv.Close()
	mux := srv.DebugMux()

	get := func(path string) *httptest.ResponseRecorder {
		t.Helper()
		rr := httptest.NewRecorder()
		mux.ServeHTTP(rr, httptest.NewRequest("GET", path, nil))
		return rr
	}

	if rr := get("/debug/pprof/"); rr.Code != 200 {
		t.Fatalf("pprof index status = %d", rr.Code)
	}
	if rr := get("/debug/pprof/goroutine?debug=1"); rr.Code != 200 {
		t.Fatalf("goroutine profile status = %d", rr.Code)
	} else if body, _ := io.ReadAll(rr.Body); !strings.Contains(string(body), "goroutine") {
		t.Fatalf("goroutine profile body unexpected: %.200s", body)
	}

	rr := get("/debug/trace")
	if rr.Code != 200 {
		t.Fatalf("trace dump status = %d", rr.Code)
	}
	if ct := rr.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("trace dump content type = %q", ct)
	}
	body, _ := io.ReadAll(rr.Body)
	if !json.Valid(body) {
		t.Fatalf("trace dump is not valid JSON: %.200s", body)
	}
	if !strings.Contains(string(body), `"displayTimeUnit":"ns"`) {
		t.Fatalf("trace dump missing trace envelope: %.200s", body)
	}

	// Without a recorder the dump 404s with a hint.
	bare := NewWithOptions(st, nil, Options{})
	defer bare.Close()
	rr = httptest.NewRecorder()
	bare.DebugMux().ServeHTTP(rr, httptest.NewRequest("GET", "/debug/trace", nil))
	if rr.Code != 404 {
		t.Fatalf("trace dump without recorder status = %d, want 404", rr.Code)
	}
}
