package kvserver

import (
	"bytes"
	"encoding/binary"
	"net"
	"sync"

	"kv3d/internal/kvstore"
	"kv3d/internal/protocol"
)

// UDP support. Facebook served memcached GETs over UDP to dodge exactly
// the TCP-stack costs the paper's Figure 4 measures (~87% of request
// time); the frame format is memcached's: an 8-byte header — request id,
// sequence number, datagram count, reserved — followed by the ASCII
// payload. Responses larger than one datagram are split with increasing
// sequence numbers.
const (
	udpHeaderLen  = 8
	udpMaxPayload = 1400 - udpHeaderLen
	udpReadBuffer = 64 << 10
)

// UDPServer answers memcached ASCII commands over UDP.
type UDPServer struct {
	store    *kvstore.Store
	conn     *net.UDPConn
	ops      *OpMetrics
	nowNanos func() int64

	mu     sync.Mutex
	closed bool

	handled uint64
	dropped uint64
	statsMu sync.Mutex
}

// ListenUDP binds a UDP memcached endpoint for the server's store.
func (s *Server) ListenUDP(addr string) (*UDPServer, error) {
	uaddr, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, err
	}
	conn, err := net.ListenUDP("udp", uaddr)
	if err != nil {
		return nil, err
	}
	u := &UDPServer{store: s.store, conn: conn, ops: s.ops, nowNanos: s.nowNanos}
	go u.serve()
	return u, nil
}

// Addr reports the bound UDP address.
func (u *UDPServer) Addr() net.Addr { return u.conn.LocalAddr() }

// Close stops the UDP listener.
func (u *UDPServer) Close() error {
	u.mu.Lock()
	u.closed = true
	u.mu.Unlock()
	return u.conn.Close()
}

// Handled reports successfully answered datagrams.
func (u *UDPServer) Handled() uint64 {
	u.statsMu.Lock()
	defer u.statsMu.Unlock()
	return u.handled
}

// Dropped reports malformed datagrams that were ignored.
func (u *UDPServer) Dropped() uint64 {
	u.statsMu.Lock()
	defer u.statsMu.Unlock()
	return u.dropped
}

func (u *UDPServer) serve() {
	buf := make([]byte, udpReadBuffer)
	for {
		n, peer, err := u.conn.ReadFromUDP(buf)
		if err != nil {
			u.mu.Lock()
			closed := u.closed
			u.mu.Unlock()
			if closed {
				return
			}
			continue
		}
		if n < udpHeaderLen {
			u.drop()
			continue
		}
		reqID := binary.BigEndian.Uint16(buf[0:])
		// buf[2:4] sequence, buf[4:6] datagram count: requests fit one
		// datagram, so anything fragmented is dropped like memcached does.
		if binary.BigEndian.Uint16(buf[2:]) != 0 || binary.BigEndian.Uint16(buf[4:]) > 1 {
			u.drop()
			continue
		}
		payload := make([]byte, n-udpHeaderLen)
		copy(payload, buf[udpHeaderLen:n])
		go u.handle(reqID, payload, peer)
	}
}

func (u *UDPServer) drop() {
	u.statsMu.Lock()
	u.dropped++
	u.statsMu.Unlock()
}

// udpExchange adapts a request datagram and a response buffer to the
// io.ReadWriter the protocol session expects.
type udpExchange struct {
	in  *bytes.Reader
	out bytes.Buffer
}

func (e *udpExchange) Read(p []byte) (int, error)  { return e.in.Read(p) }
func (e *udpExchange) Write(p []byte) (int, error) { return e.out.Write(p) }

// handle runs the ASCII command(s) in one datagram and sends the
// (possibly fragmented) response.
func (u *UDPServer) handle(reqID uint16, payload []byte, peer *net.UDPAddr) {
	rw := &udpExchange{in: bytes.NewReader(payload)}
	sess := protocol.NewSession(u.store, rw)
	sess.SetObserver(u.ops, u.nowNanos)
	// Errors end the session; whatever was produced still goes back.
	_ = sess.Serve()

	resp := rw.out.Bytes()
	total := (len(resp) + udpMaxPayload - 1) / udpMaxPayload
	if total == 0 {
		total = 1
	}
	if total > 0xffff {
		u.drop()
		return
	}
	frame := make([]byte, udpHeaderLen+udpMaxPayload)
	binary.BigEndian.PutUint16(frame[0:], reqID)
	binary.BigEndian.PutUint16(frame[4:], uint16(total))
	for seq := 0; seq < total; seq++ {
		binary.BigEndian.PutUint16(frame[2:], uint16(seq))
		chunk := resp[seq*udpMaxPayload:]
		if len(chunk) > udpMaxPayload {
			chunk = chunk[:udpMaxPayload]
		}
		n := copy(frame[udpHeaderLen:], chunk)
		if _, err := u.conn.WriteToUDP(frame[:udpHeaderLen+n], peer); err != nil {
			return
		}
	}
	u.statsMu.Lock()
	u.handled++
	u.statsMu.Unlock()
}
