package kvserver

import (
	"bytes"
	"net"
	"sync"
	"sync/atomic"

	"kv3d/internal/kvstore"
	"kv3d/internal/protocol"
	"kv3d/internal/sim"
)

// UDP support. The frame format and parser live in internal/protocol
// (see udpframe.go, where the format is documented and fuzzed); this
// file owns the sockets, goroutines and response fragmentation:
// responses larger than one datagram are split with increasing
// sequence numbers.
const (
	udpHeaderLen  = protocol.UDPHeaderLen
	udpMaxPayload = protocol.UDPMaxPayload
	udpReadBuffer = 64 << 10
	// udpMaxInflight bounds concurrent datagram handlers. Without it a
	// request burst spawns one goroutine per datagram with no ceiling —
	// the lifecycle/spawnloop shape — and a slow store turns load
	// directly into unbounded memory. At the bound the read loop stops
	// pulling datagrams and the kernel socket buffer does the shedding.
	udpMaxInflight = 128
)

// UDPServer answers memcached ASCII commands over UDP.
type UDPServer struct {
	store    *kvstore.Store
	conn     *net.UDPConn
	ops      *OpMetrics
	nowNanos func() sim.Ns

	// flight sampling happens per datagram (sessions are one-shot, so a
	// per-session counter would trace every first op): one datagram in
	// every flight.every gets its ops traced on the srv.udp track.
	flight    *serverFlight
	flightSeq atomic.Uint64

	mu     sync.Mutex
	closed bool //kv3d:guardedby mu

	// sem bounds in-flight handlers (udpMaxInflight); handlers counts
	// them so Close can wait for the last response to be written.
	sem      chan struct{}
	handlers sync.WaitGroup

	handled uint64 //kv3d:guardedby statsMu
	dropped uint64 //kv3d:guardedby statsMu
	statsMu sync.Mutex
}

// ListenUDP binds a UDP memcached endpoint for the server's store.
func (s *Server) ListenUDP(addr string) (*UDPServer, error) {
	uaddr, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, err
	}
	conn, err := net.ListenUDP("udp", uaddr)
	if err != nil {
		return nil, err
	}
	u := &UDPServer{
		store: s.store, conn: conn, ops: s.ops, nowNanos: s.nowNanos, flight: s.flight,
		sem: make(chan struct{}, udpMaxInflight),
	}
	go u.serve()
	return u, nil
}

// Addr reports the bound UDP address.
func (u *UDPServer) Addr() net.Addr { return u.conn.LocalAddr() }

// Close stops the UDP listener and waits for in-flight datagram
// handlers to finish writing their responses.
func (u *UDPServer) Close() error {
	u.mu.Lock()
	u.closed = true
	u.mu.Unlock()
	err := u.conn.Close()
	u.handlers.Wait()
	return err
}

// Handled reports successfully answered datagrams.
func (u *UDPServer) Handled() uint64 {
	u.statsMu.Lock()
	defer u.statsMu.Unlock()
	return u.handled
}

// Dropped reports malformed datagrams that were ignored.
func (u *UDPServer) Dropped() uint64 {
	u.statsMu.Lock()
	defer u.statsMu.Unlock()
	return u.dropped
}

func (u *UDPServer) serve() {
	buf := make([]byte, udpReadBuffer)
	for {
		n, peer, err := u.conn.ReadFromUDP(buf)
		if err != nil {
			u.mu.Lock()
			closed := u.closed
			u.mu.Unlock()
			if closed {
				return
			}
			continue
		}
		reqID, src, err := protocol.ParseUDPRequest(buf[:n])
		if err != nil {
			u.drop()
			continue
		}
		payload := make([]byte, len(src))
		copy(payload, src)
		u.sem <- struct{}{}
		u.handlers.Add(1)
		go u.handle(reqID, payload, peer)
	}
}

// release frees one handler's semaphore slot and WaitGroup count (a
// method rather than a closure so the hot-path defer does not allocate
// a capture environment).
func (u *UDPServer) release() {
	<-u.sem
	u.handlers.Done()
}

func (u *UDPServer) drop() {
	u.statsMu.Lock()
	u.dropped++
	u.statsMu.Unlock()
}

// udpExchange adapts a request datagram and a response buffer to the
// io.ReadWriter the protocol session expects.
type udpExchange struct {
	in  *bytes.Reader
	out bytes.Buffer
}

func (e *udpExchange) Read(p []byte) (int, error)  { return e.in.Read(p) }
func (e *udpExchange) Write(p []byte) (int, error) { return e.out.Write(p) }

// handle runs the ASCII command(s) in one datagram and sends the
// (possibly fragmented) response. The caller (serve) has already
// acquired a semaphore slot and registered the handler with the
// WaitGroup; the deferred release undoes both.
//
//kv3d:hotpath
func (u *UDPServer) handle(reqID uint16, payload []byte, peer *net.UDPAddr) {
	defer u.release()
	rw := &udpExchange{in: bytes.NewReader(payload)}
	sess := protocol.NewSession(u.store, rw)
	sess.SetObserver(u.ops, u.nowNanos)
	if u.flight != nil && (u.flightSeq.Add(1)-1)%uint64(u.flight.every) == 0 {
		sess.SetFlight(&u.flight.udpSink, 1)
	}
	_ = sess.Serve() //nolint:kv3d -- errors end the session; whatever response was produced still goes back to the peer

	resp := rw.out.Bytes()
	total := (len(resp) + udpMaxPayload - 1) / udpMaxPayload
	if total == 0 {
		total = 1
	}
	if total > 0xffff {
		u.drop()
		return
	}
	frame := make([]byte, udpHeaderLen+udpMaxPayload)
	for seq := 0; seq < total; seq++ {
		protocol.PutUDPHeader(frame, reqID, uint16(seq), uint16(total))
		chunk := resp[seq*udpMaxPayload:]
		if len(chunk) > udpMaxPayload {
			chunk = chunk[:udpMaxPayload]
		}
		n := copy(frame[udpHeaderLen:], chunk)
		if _, err := u.conn.WriteToUDP(frame[:udpHeaderLen+n], peer); err != nil {
			// A datagram that never reached the peer is neither handled
			// nor silently gone: count it so Dropped() reflects response
			// losses, not just malformed requests (previously this path
			// returned without touching either counter).
			u.drop()
			return
		}
	}
	u.statsMu.Lock()
	u.handled++
	u.statsMu.Unlock()
}
