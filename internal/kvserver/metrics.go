package kvserver

import (
	"fmt"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"

	"kv3d/internal/metrics"
	"kv3d/internal/obs"
	"kv3d/internal/protocol"
	"kv3d/internal/sim"
)

// RejectReason classifies refused work: connections turned away at the
// accept loop and requests shed by the in-flight gate.
type RejectReason int

const (
	// RejectMaxConns is an accept refused by the connection cap.
	RejectMaxConns RejectReason = iota
	// RejectBusy is a request shed by the in-flight cap.
	RejectBusy
	// RejectDraining is an accept refused during graceful shutdown.
	RejectDraining

	numRejectReasons
)

func (r RejectReason) String() string {
	switch r {
	case RejectMaxConns:
		return "max_conns"
	case RejectBusy:
		return "busy"
	case RejectDraining:
		return "draining"
	}
	return "unknown"
}

// OpMetrics aggregates per-operation-class latency histograms across
// all connections (TCP ASCII, TCP binary, UDP), split by outcome
// (ok / error / busy) so load-shed responses appear in latency
// accounting instead of vanishing, plus rejection counters. It
// implements protocol.Observer; sessions call ObserveOp from their
// connection goroutines, so the histograms sit behind a mutex (the
// reject counters are atomic and lock-free).
type OpMetrics struct {
	mu      sync.Mutex
	hists   [protocol.NumOpClasses][protocol.NumOutcomes]*metrics.Histogram //kv3d:guardedby mu
	rejects [numRejectReasons]atomic.Uint64
}

// Reject counts one refusal.
func (m *OpMetrics) Reject(r RejectReason) {
	if r < 0 || r >= numRejectReasons {
		return
	}
	m.rejects[r].Add(1) //nolint:kv3d -- rejects is an atomic counter array, deliberately lock-free (hot shed path)
}

// Rejects reports the refusal count for one reason.
func (m *OpMetrics) Rejects(r RejectReason) uint64 {
	if r < 0 || r >= numRejectReasons {
		return 0
	}
	return m.rejects[r].Load() //nolint:kv3d -- rejects is an atomic counter array, deliberately lock-free (hot shed path)
}

// NewOpMetrics allocates histograms for every operation class and
// outcome.
func NewOpMetrics() *OpMetrics {
	m := &OpMetrics{}
	for c := range m.hists {
		for o := range m.hists[c] {
			m.hists[c][o] = metrics.NewHistogram()
		}
	}
	return m
}

// ObserveOp records one command's handling time in nanoseconds under
// its outcome.
func (m *OpMetrics) ObserveOp(c protocol.OpClass, o protocol.Outcome, nanos sim.Ns) {
	if c < 0 || c >= protocol.NumOpClasses {
		c = protocol.ClassOther
	}
	if o < 0 || o >= protocol.NumOutcomes {
		o = protocol.OutcomeError
	}
	m.mu.Lock()
	m.hists[c][o].Record(int64(nanos))
	m.mu.Unlock()
}

// Summary snapshots one class's histogram aggregated across outcomes
// (the pre-outcome-split view; existing dashboards keep working).
func (m *OpMetrics) Summary(c protocol.OpClass) metrics.Summary {
	if c < 0 || c >= protocol.NumOpClasses {
		c = protocol.ClassOther
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.aggregateLocked(c).Summarize()
}

// OutcomeSummary snapshots one (class, outcome) histogram.
func (m *OpMetrics) OutcomeSummary(c protocol.OpClass, o protocol.Outcome) metrics.Summary {
	if c < 0 || c >= protocol.NumOpClasses {
		c = protocol.ClassOther
	}
	if o < 0 || o >= protocol.NumOutcomes {
		o = protocol.OutcomeError
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.hists[c][o].Summarize()
}

// aggregateLocked merges one class's outcome histograms. Caller holds mu.
func (m *OpMetrics) aggregateLocked(c protocol.OpClass) *metrics.Histogram {
	agg := metrics.NewHistogram()
	for o := range m.hists[c] {
		agg.Merge(m.hists[c][o])
	}
	return agg
}

// Probes exports per-class latency summaries under the obs naming
// scheme: live.op.<class>.latency_ns.* aggregates all outcomes
// (preserving the pre-split names), and live.op.<class>.<outcome>.latency_ns.*
// breaks them out. Classes and outcomes with no recorded operations
// are skipped so the endpoint stays compact.
func (m *OpMetrics) Probes() []obs.Probe {
	m.mu.Lock()
	defer m.mu.Unlock()
	var probes []obs.Probe
	for c := protocol.OpClass(0); c < protocol.NumOpClasses; c++ {
		s := m.aggregateLocked(c).Summarize()
		if s.Count == 0 {
			continue
		}
		probes = append(probes,
			obs.SummaryProbes("live.op."+c.String()+".latency_ns", s)...)
		for o := protocol.Outcome(0); o < protocol.NumOutcomes; o++ {
			os := m.hists[c][o].Summarize()
			if os.Count == 0 {
				continue
			}
			probes = append(probes,
				obs.SummaryProbes("live.op."+c.String()+"."+o.String()+".latency_ns", os)...)
		}
	}
	for r := RejectReason(0); r < numRejectReasons; r++ {
		if n := m.rejects[r].Load(); n > 0 {
			probes = append(probes, obs.Probe{
				Name: "live.server.rejected." + r.String(), Value: float64(n)})
		}
	}
	return probes
}

// Probes snapshots the server's live counters — store statistics, slab
// class occupancy, connection accounting, and per-op latency summaries
// — under the same dotted naming scheme the simulator's probe registry
// uses. The slice is sorted by name so the metrics endpoint renders
// deterministically for a given state.
func (s *Server) Probes() []obs.Probe {
	st := s.store.Stats()
	probes := []obs.Probe{
		{Name: "live.server.conns_accepted", Value: float64(s.Accepted())},
		{Name: "live.server.conns_rejected", Value: float64(s.Rejected())},
		{Name: "live.server.conns_active", Value: float64(s.Active())},
		{Name: "live.server.metrics_write_errors", Value: float64(s.MetricsWriteErrors())},
		{Name: "live.store.get_hits", Value: float64(st.GetHits)},
		{Name: "live.store.get_misses", Value: float64(st.GetMisses)},
		{Name: "live.store.sets", Value: float64(st.Sets)},
		{Name: "live.store.delete_hits", Value: float64(st.DeleteHits)},
		{Name: "live.store.delete_misses", Value: float64(st.DeleteMisses)},
		{Name: "live.store.cas_hits", Value: float64(st.CasHits)},
		{Name: "live.store.cas_misses", Value: float64(st.CasMisses)},
		{Name: "live.store.cas_badval", Value: float64(st.CasBadval)},
		{Name: "live.store.incr_hits", Value: float64(st.IncrHits)},
		{Name: "live.store.incr_misses", Value: float64(st.IncrMisses)},
		{Name: "live.store.decr_hits", Value: float64(st.DecrHits)},
		{Name: "live.store.decr_misses", Value: float64(st.DecrMisses)},
		{Name: "live.store.touch_hits", Value: float64(st.TouchHits)},
		{Name: "live.store.touch_misses", Value: float64(st.TouchMisses)},
		{Name: "live.store.evictions", Value: float64(st.Evictions)},
		{Name: "live.store.expired", Value: float64(st.Expired)},
		{Name: "live.store.slab_reassigns", Value: float64(st.SlabReassigns)},
		{Name: "live.store.total_items", Value: float64(st.TotalItems)},
		{Name: "live.store.curr_items", Value: float64(st.CurrItems)},
		{Name: "live.store.bytes_used", Value: float64(st.BytesUsed)},
		{Name: "live.store.slab_bytes", Value: float64(st.SlabBytes)},
		{Name: "live.store.hit_rate", Value: st.HitRate()},
	}
	for _, c := range s.store.SlabStats() {
		prefix := fmt.Sprintf("live.slab.class-%02d.", c.ClassID)
		probes = append(probes,
			obs.Probe{Name: prefix + "chunk_size", Value: float64(c.ChunkSize)},
			obs.Probe{Name: prefix + "pages", Value: float64(c.Pages)},
			obs.Probe{Name: prefix + "used_chunks", Value: float64(c.UsedChunks)},
			obs.Probe{Name: prefix + "free_chunks", Value: float64(c.FreeChunks)},
		)
	}
	probes = append(probes, s.ops.Probes()...)
	probes = append(probes, s.Telemetry().Probes()...)
	if s.coal != nil {
		probes = append(probes,
			obs.Probe{Name: "live.batch.rounds", Value: float64(s.coal.Rounds())},
			obs.Probe{Name: "live.batch.ops", Value: float64(s.coal.Ops())},
			obs.Probe{Name: "live.batch.coalesced", Value: float64(s.coal.Coalesced())},
		)
	}
	if rp, ok := s.opts.Repl.(*Replicator); ok && rp != nil {
		probes = append(probes, rp.Probes()...)
	}
	if s.opts.Migrator != nil {
		probes = append(probes, s.opts.Migrator.Probes()...)
	}
	sort.Slice(probes, func(i, j int) bool { return probes[i].Name < probes[j].Name })
	return probes
}

// OpMetrics exposes the per-op latency aggregator (for tests and
// tools that want summaries rather than the rendered endpoint).
func (s *Server) OpMetrics() *OpMetrics { return s.ops }

// MetricsHandler serves the server's probes in Prometheus text
// exposition format. Mount it on any mux, e.g.
//
//	http.Handle("/metrics", srv.MetricsHandler())
func (s *Server) MetricsHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := obs.WritePrometheus(w, s.Probes()); err != nil {
			// Too late for an HTTP status (the body started); count the
			// truncated scrape so it is visible on the next one.
			s.metricsWriteErrors.Add(1)
		}
	})
}

// MetricsWriteErrors reports /metrics responses that failed mid-write.
func (s *Server) MetricsWriteErrors() uint64 { return s.metricsWriteErrors.Load() }
