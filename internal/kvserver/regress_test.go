package kvserver

// Regression tests for bugs surfaced by the kv3d-lint v2 errdrop and
// lockorder checks (see LINTING.md). Each pins a code path that used
// to discard an error silently.

import (
	"errors"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"kv3d/internal/kvstore"
)

// TestUDPWriteFailureCountsDropped pins the fix for the UDP stats
// path: a WriteToUDP failure used to return without touching either
// counter, so response losses were invisible. It must count as a drop.
func TestUDPWriteFailureCountsDropped(t *testing.T) {
	st, err := kvstore.New(kvstore.DefaultConfig(32 << 20))
	if err != nil {
		t.Fatal(err)
	}
	srv := NewWithOptions(st, nil, Options{NowNanos: fakeNanos()})

	uaddr, err := net.ResolveUDPAddr("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	conn, err := net.ListenUDP("udp", uaddr)
	if err != nil {
		t.Fatal(err)
	}
	peer := conn.LocalAddr().(*net.UDPAddr)
	conn.Close() // every WriteToUDP from here on fails

	u := &UDPServer{store: st, conn: conn, ops: srv.ops, nowNanos: srv.nowNanos,
		sem: make(chan struct{}, 1)}
	// handle expects serve's preamble: a semaphore slot held and the
	// handler registered with the WaitGroup (release undoes both).
	u.sem <- struct{}{}
	u.handlers.Add(1)
	u.handle(7, []byte("version\r\n"), peer)

	if got := u.Dropped(); got != 1 {
		t.Fatalf("Dropped() = %d after send failure, want 1", got)
	}
	if got := u.Handled(); got != 0 {
		t.Fatalf("Handled() = %d after send failure, want 0", got)
	}
}

// failAfterWriter is an http.ResponseWriter whose body writes fail
// once the byte budget is exhausted, mid-response.
type failAfterWriter struct {
	hdr    http.Header
	budget int
}

func (w *failAfterWriter) Header() http.Header { return w.hdr }
func (w *failAfterWriter) WriteHeader(int)     {}
func (w *failAfterWriter) Write(p []byte) (int, error) {
	if len(p) > w.budget {
		n := w.budget
		w.budget = 0
		return n, errors.New("scrape connection lost")
	}
	w.budget -= len(p)
	return len(p), nil
}

// TestMetricsHandlerCountsWriteErrors pins the fix for the metrics
// renderer: a mid-write failure is too late for an HTTP status, so it
// must be counted where the next scrape can see it.
func TestMetricsHandlerCountsWriteErrors(t *testing.T) {
	st, err := kvstore.New(kvstore.DefaultConfig(32 << 20))
	if err != nil {
		t.Fatal(err)
	}
	srv := NewWithOptions(st, nil, Options{NowNanos: fakeNanos()})
	h := srv.MetricsHandler()

	req := httptest.NewRequest("GET", "/metrics", nil)
	h.ServeHTTP(&failAfterWriter{hdr: make(http.Header), budget: 16}, req)
	if got := srv.MetricsWriteErrors(); got != 1 {
		t.Fatalf("MetricsWriteErrors() = %d after truncated scrape, want 1", got)
	}

	// A healthy scrape must not move the counter, and must report it.
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if got := srv.MetricsWriteErrors(); got != 1 {
		t.Fatalf("MetricsWriteErrors() = %d after clean scrape, want 1", got)
	}
	if body := rec.Body.String(); !strings.Contains(body, "metrics_write_errors") {
		t.Fatalf("metrics body does not expose the write-error counter:\n%s", body)
	}
}
