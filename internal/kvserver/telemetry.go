package kvserver

// Runtime telemetry: a lightweight background sampler reading Go
// runtime statistics (heap, GC pauses, goroutine count) plus an
// observed scheduler-latency proxy, exported through Server.Probes()
// under live.runtime.*. This lives in kvserver — not internal/obs —
// because it reads wall clocks and runtime state, which the obs
// package's determinism contract (it sits inside the sim import
// closure) forbids.

import (
	"runtime"
	"sync"
	"time"

	"kv3d/internal/obs"
)

// Telemetry periodically samples runtime statistics. Create with
// Server.StartTelemetry; Stop to halt the sampler goroutine. A nil
// *Telemetry is a valid, disabled sampler.
type Telemetry struct {
	every time.Duration
	stop  chan struct{}
	done  chan struct{}

	mu   sync.Mutex
	snap telemetrySnapshot //kv3d:guardedby mu
}

type telemetrySnapshot struct {
	heapAllocBytes  uint64
	heapSysBytes    uint64
	heapObjects     uint64
	gcPauseTotalNs  uint64
	gcLastPauseNs   uint64
	gcCycles        uint32
	goroutines      int
	schedLagNs      int64 // last observed tick delay beyond the period
	schedLagMaxNs   int64
	samples         uint64
	gcCPUFraction   float64
	nextGCBytes     uint64
	stackInUseBytes uint64
}

// StartTelemetry launches the runtime sampler with the given period
// (defaults to 1s when <= 0). It returns the running sampler; calling
// it again replaces the previous one (which is stopped). Close stops
// the active sampler.
func (s *Server) StartTelemetry(every time.Duration) *Telemetry {
	if every <= 0 {
		every = time.Second
	}
	t := &Telemetry{
		every: every,
		stop:  make(chan struct{}),
		done:  make(chan struct{}),
	}
	t.sample(0) // synchronous first sample: probes are live on return
	go t.run()
	s.mu.Lock()
	prev := s.telemetry
	s.telemetry = t
	s.mu.Unlock()
	prev.Stop()
	return t
}

// Telemetry returns the active sampler, or nil.
func (s *Server) Telemetry() *Telemetry {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.telemetry
}

// Stop halts the sampler goroutine and waits for it to exit. Safe to
// call multiple times and on a nil receiver.
func (t *Telemetry) Stop() {
	if t == nil {
		return
	}
	select {
	case <-t.stop:
		// already stopped
	default:
		close(t.stop)
	}
	<-t.done
}

func (t *Telemetry) run() {
	defer close(t.done)
	ticker := time.NewTicker(t.every)
	defer ticker.Stop()
	last := time.Now()
	for {
		select {
		case <-t.stop:
			return
		case <-ticker.C:
			now := time.Now()
			// How late the tick fired past its period approximates
			// scheduler/timer latency under load: a starved runtime
			// delivers ticks behind schedule.
			lag := now.Sub(last) - t.every
			if lag < 0 {
				lag = 0
			}
			last = now
			t.sample(lag.Nanoseconds())
		}
	}
}

// sample reads runtime state into the snapshot. ReadMemStats
// stop-the-world cost is ~tens of µs, negligible at 1s cadence.
func (t *Telemetry) sample(lagNs int64) {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	ng := runtime.NumGoroutine()

	t.mu.Lock()
	defer t.mu.Unlock()
	t.snap.heapAllocBytes = ms.HeapAlloc
	t.snap.heapSysBytes = ms.HeapSys
	t.snap.heapObjects = ms.HeapObjects
	t.snap.gcPauseTotalNs = ms.PauseTotalNs
	if ms.NumGC > 0 {
		t.snap.gcLastPauseNs = ms.PauseNs[(ms.NumGC+255)%256]
	}
	t.snap.gcCycles = ms.NumGC
	t.snap.gcCPUFraction = ms.GCCPUFraction
	t.snap.nextGCBytes = ms.NextGC
	t.snap.stackInUseBytes = ms.StackInuse
	t.snap.goroutines = ng
	t.snap.schedLagNs = lagNs
	if lagNs > t.snap.schedLagMaxNs {
		t.snap.schedLagMaxNs = lagNs
	}
	t.snap.samples++
}

// Probes exports the latest runtime sample under live.runtime.*. Nil
// or never-sampled receivers export nothing.
func (t *Telemetry) Probes() []obs.Probe {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	snap := t.snap
	t.mu.Unlock()
	if snap.samples == 0 {
		return nil
	}
	return []obs.Probe{
		{Name: "live.runtime.heap_alloc_bytes", Value: float64(snap.heapAllocBytes)},
		{Name: "live.runtime.heap_sys_bytes", Value: float64(snap.heapSysBytes)},
		{Name: "live.runtime.heap_objects", Value: float64(snap.heapObjects)},
		{Name: "live.runtime.stack_inuse_bytes", Value: float64(snap.stackInUseBytes)},
		{Name: "live.runtime.next_gc_bytes", Value: float64(snap.nextGCBytes)},
		{Name: "live.runtime.gc_pause_total_ns", Value: float64(snap.gcPauseTotalNs)},
		{Name: "live.runtime.gc_last_pause_ns", Value: float64(snap.gcLastPauseNs)},
		{Name: "live.runtime.gc_cycles", Value: float64(snap.gcCycles)},
		{Name: "live.runtime.gc_cpu_fraction", Value: snap.gcCPUFraction},
		{Name: "live.runtime.goroutines", Value: float64(snap.goroutines)},
		{Name: "live.runtime.sched_lag_ns", Value: float64(snap.schedLagNs)},
		{Name: "live.runtime.sched_lag_max_ns", Value: float64(snap.schedLagMaxNs)}, //nolint:kv3d -- snap is a by-value copy taken under t.mu above

		{Name: "live.runtime.samples", Value: float64(snap.samples)},
	}
}
