package kvserver

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/json"
	"flag"
	"io"
	"net"
	"os"
	"path/filepath"
	"testing"
	"time"

	"kv3d/internal/kvstore"
	"kv3d/internal/obs"
)

var updateFlightGolden = flag.Bool("update", false, "rewrite golden flight-trace files")

// startFlightServer runs a server with a fake clock and full sampling
// (FlightEvery=1) so a scripted session records every op.
func startFlightServer(t *testing.T) (*Server, *obs.FlightRecorder, string) {
	t.Helper()
	st, err := kvstore.New(kvstore.DefaultConfig(32 << 20))
	if err != nil {
		t.Fatal(err)
	}
	rec := obs.NewFlightRecorder("server", 256)
	srv := NewWithOptions(st, nil, Options{
		NowNanos:    fakeNanos(),
		Flight:      rec,
		FlightEvery: 1,
	})
	if err := srv.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	go srv.Serve()
	return srv, rec, srv.Addr().String()
}

// waitIdle waits for all connection handlers to finish, so lifecycle
// events land in the ring in a deterministic order.
func waitIdle(t *testing.T, srv *Server) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for srv.Active() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("server still has %d active conns", srv.Active())
		}
		time.Sleep(time.Millisecond)
	}
}

// scriptASCII runs a fixed command sequence over one raw TCP
// connection: set, single get, multiget (one hit one miss), a shed-free
// delete, quit.
func scriptASCII(t *testing.T, addr string) {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	br := bufio.NewReader(conn)
	send := func(cmd string, wantLines int) {
		t.Helper()
		if _, err := io.WriteString(conn, cmd); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < wantLines; i++ {
			if _, err := br.ReadString('\n'); err != nil {
				t.Fatalf("reading response to %q: %v", cmd, err)
			}
		}
	}
	send("set k 0 0 1\r\nv\r\n", 1) // STORED
	send("get k\r\n", 3)            // VALUE, v, END
	send("get k missing\r\n", 3)    // VALUE, v, END
	send("delete k\r\n", 1)         // DELETED
	if _, err := io.WriteString(conn, "quit\r\n"); err != nil {
		t.Fatal(err)
	}
}

// binFrame assembles one binary request frame.
func binFrame(opcode byte, opaque uint32, extras, key, value []byte) []byte {
	buf := make([]byte, 24+len(extras)+len(key)+len(value))
	buf[0] = 0x80
	buf[1] = opcode
	binary.BigEndian.PutUint16(buf[2:], uint16(len(key)))
	buf[4] = byte(len(extras))
	binary.BigEndian.PutUint32(buf[8:], uint32(len(extras)+len(key)+len(value)))
	binary.BigEndian.PutUint32(buf[12:], opaque)
	n := copy(buf[24:], extras)
	n += copy(buf[24+n:], key)
	copy(buf[24+n:], value)
	return buf
}

// scriptBinary runs set + get + quit with distinct opaque values, so
// the golden trace carries opaque-correlated async spans.
func scriptBinary(t *testing.T, addr string) {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	var extras [8]byte // flags 0, exptime 0
	var req []byte
	req = append(req, binFrame(0x01, 0xbeef, extras[:], []byte("bk"), []byte("bv"))...) // set
	req = append(req, binFrame(0x00, 0xcafe, nil, []byte("bk"), nil)...)                // get
	req = append(req, binFrame(0x07, 0xf00d, nil, nil, nil)...)                         // quit
	if _, err := conn.Write(req); err != nil {
		t.Fatal(err)
	}
	// Drain all responses until the server closes the stream after quit.
	io.Copy(io.Discard, conn) //nolint:errcheck
}

func runFlightGolden(t *testing.T) []byte {
	t.Helper()
	srv, rec, addr := startFlightServer(t)
	defer srv.Close()
	scriptASCII(t, addr)
	waitIdle(t, srv)
	scriptBinary(t, addr)
	waitIdle(t, srv)
	var buf bytes.Buffer
	if err := rec.WriteTraceJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestFlightGolden pins the live trace serialization: the same scripted
// session against a fake clock must produce byte-identical,
// Perfetto-loadable output, checked against a committed golden file.
// Regenerate with
//
//	go test ./internal/kvserver -run TestFlightGolden -update
func TestFlightGolden(t *testing.T) {
	got := runFlightGolden(t)
	if again := runFlightGolden(t); !bytes.Equal(got, again) {
		t.Fatalf("same script produced different trace bytes across runs:\n%s\nvs\n%s", got, again)
	}
	if !json.Valid(got) {
		t.Fatal("flight trace is not valid JSON")
	}

	path := filepath.Join("testdata", "flight_golden.json")
	if *updateFlightGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to create): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("flight trace drifted from golden (len %d vs %d); run with -update if intended",
			len(got), len(want))
	}
}

// TestFlightGoldenContent checks the recorded span kinds independent of
// exact bytes: per-op class spans with outcomes, the three phase
// children, lifecycle instants, and opaque-keyed async correlation.
func TestFlightGoldenContent(t *testing.T) {
	got := runFlightGolden(t)
	var doc struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
			ID   string `json:"id"`
			Args struct {
				Outcome string `json:"outcome"`
			} `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(got, &doc); err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	ids := map[string]int{}
	outcomes := map[string]int{}
	for _, ev := range doc.TraceEvents {
		counts[ev.Ph+"/"+ev.Name]++
		if ev.ID != "" {
			ids[ev.ID]++
		}
		if ev.Args.Outcome != "" {
			outcomes[ev.Args.Outcome]++
		}
	}
	for _, want := range []string{
		"X/get", "X/store", "X/delete", "X/other",
		"X/parse", "X/execute", "X/write",
		"i/conn.open", "i/conn.close",
		"b/store", "e/store", "b/get", "e/get",
		"C/conns.active",
	} {
		if counts[want] == 0 {
			t.Errorf("flight trace missing %q events: %v", want, counts)
		}
	}
	// The binary script's opaques, decimal-rendered: 0xbeef and 0xcafe
	// must each appear as one async begin + one async end. (The quit
	// frame's opaque also correlates.)
	for _, id := range []string{"48879", "51966"} {
		if ids[id] != 2 {
			t.Errorf("opaque id %s appears %d times, want 2 (async begin+end): %v", id, ids[id], ids)
		}
	}
	if outcomes["ok"] == 0 {
		t.Errorf("no ok-outcome spans recorded: %v", outcomes)
	}
}
