package kvserver

// Opt-in debug endpoints for the metrics listener: net/http/pprof
// profiling under /debug/pprof/ and a flight-recorder trace dump under
// /debug/trace. Mounted only when the operator asks (kv3d-server
// -pprof / -flight), never on the data path's port.

import (
	"net/http"
	"net/http/pprof"
)

// DebugMux returns a mux exposing the standard pprof profiling
// endpoints and the flight-recorder dump:
//
//	/debug/pprof/           profile index (heap, goroutine, ...)
//	/debug/pprof/profile    CPU profile
//	/debug/trace            current flight-recorder ring as Chrome
//	                        trace JSON (open in Perfetto); 404 when
//	                        recording is off
//
// The handlers are mounted explicitly rather than relying on the
// net/http/pprof init registration, so nothing leaks onto muxes the
// caller didn't ask to expose.
func (s *Server) DebugMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/trace", s.FlightDumpHandler())
	return mux
}

// FlightDumpHandler serves the flight recorder's current ring as a
// Perfetto-loadable trace document. Each request snapshots the ring at
// that instant; recording continues undisturbed.
func (s *Server) FlightDumpHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		rec := s.Flight()
		if rec == nil {
			http.Error(w, "flight recording is off (start the server with a flight recorder)", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		if err := rec.WriteTraceJSON(w); err != nil {
			// Same discipline as MetricsHandler: the body already
			// started, so count the truncated dump instead of failing.
			s.metricsWriteErrors.Add(1)
		}
	})
}
