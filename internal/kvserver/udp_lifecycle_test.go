package kvserver

import (
	"net"
	"testing"
	"time"

	"kv3d/internal/protocol"
)

// Regression coverage for the unbounded UDP spawn loop kv3d-lint's
// lifecycle check flagged (serve spawned one untracked goroutine per
// datagram): handlers are now bounded by a semaphore and joined by
// Close. These tests pin both properties.

// TestUDPBurstDrainsWithBoundedInflight pushes several times the
// in-flight bound through the listener in waves (each wave fits the
// kernel socket buffer and is drained before the next, so no datagram
// is lost to the OS): if a handler ever fails to release its semaphore
// slot, total throughput caps at udpMaxInflight processed datagrams
// and a later wave times out instead of draining.
func TestUDPBurstDrainsWithBoundedInflight(t *testing.T) {
	srv, _ := startServer(t)
	udp, err := srv.ListenUDP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer udp.Close()
	if cap(udp.sem) != udpMaxInflight {
		t.Fatalf("sem capacity = %d, want udpMaxInflight (%d)", cap(udp.sem), udpMaxInflight)
	}
	srv.Store().Set("burst-key", []byte("burst-value"), 0, 0)

	conn, err := net.Dial("udp", udp.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	const payload = "get burst-key\r\n"
	frame := make([]byte, protocol.UDPHeaderLen+len(payload))
	copy(frame[protocol.UDPHeaderLen:], payload)
	const (
		waveSize = udpMaxInflight / 2
		waves    = 6 // 3× the bound in total
	)
	sent := uint64(0)
	for wave := 0; wave < waves; wave++ {
		for i := 0; i < waveSize; i++ {
			protocol.PutUDPHeader(frame, uint16(sent), 0, 1)
			if _, err := conn.Write(frame); err != nil {
				t.Fatal(err)
			}
			sent++
		}
		deadline := time.Now().Add(10 * time.Second)
		for udp.Handled()+udp.Dropped() < sent {
			if time.Now().After(deadline) {
				t.Fatalf("wave %d: processed %d of %d datagrams; serve loop appears wedged at the in-flight bound",
					wave, udp.Handled()+udp.Dropped(), sent)
			}
			time.Sleep(2 * time.Millisecond)
		}
	}
}

// TestUDPCloseWaitsForHandlers: Close must join in-flight handlers, not
// race them — the pre-fix behaviour returned from Close while handler
// goroutines were still writing responses on the closing socket.
func TestUDPCloseWaitsForHandlers(t *testing.T) {
	srv, _ := startServer(t)
	udp, err := srv.ListenUDP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	// Stand in for a slow in-flight handler.
	release := make(chan struct{})
	udp.handlers.Add(1)
	go func() {
		<-release
		udp.handlers.Done()
	}()

	closed := make(chan error, 1)
	go func() { closed <- udp.Close() }()
	select {
	case <-closed:
		t.Fatal("Close returned with a handler still in flight")
	case <-time.After(50 * time.Millisecond):
	}
	close(release)
	select {
	case err := <-closed:
		if err != nil {
			t.Fatalf("Close: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Close did not return after the last handler finished")
	}
}
