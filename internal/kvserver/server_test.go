package kvserver

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"testing"
	"time"

	"kv3d/internal/kvclient"
	"kv3d/internal/kvstore"
	"kv3d/internal/testutil"
)

func startServer(t *testing.T) (*Server, string) {
	t.Helper()
	// Registered before the Close cleanup below, so it checks after the
	// server (and any UDP listener the test added) has shut down.
	testutil.CheckGoroutines(t)
	st, err := kvstore.New(kvstore.DefaultConfig(32 << 20))
	if err != nil {
		t.Fatal(err)
	}
	srv := New(st, nil)
	if err := srv.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	go srv.Serve()
	t.Cleanup(func() { srv.Close() })
	return srv, srv.Addr().String()
}

func TestEndToEndSetGet(t *testing.T) {
	_, addr := startServer(t)
	c, err := kvclient.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Set("greeting", []byte("hello world"), 7, 0); err != nil {
		t.Fatal(err)
	}
	it, err := c.Get("greeting")
	if err != nil {
		t.Fatal(err)
	}
	if string(it.Value) != "hello world" || it.Flags != 7 {
		t.Fatalf("item = %+v", it)
	}
}

func TestEndToEndMiss(t *testing.T) {
	_, addr := startServer(t)
	c, _ := kvclient.Dial(addr)
	defer c.Close()
	if _, err := c.Get("absent"); !errors.Is(err, kvclient.ErrNotFound) {
		t.Fatalf("err = %v", err)
	}
}

func TestEndToEndAllVerbs(t *testing.T) {
	_, addr := startServer(t)
	c, _ := kvclient.Dial(addr)
	defer c.Close()

	if err := c.Add("k", []byte("mid"), 0, 0); err != nil {
		t.Fatal(err)
	}
	if err := c.Add("k", []byte("x"), 0, 0); !errors.Is(err, kvclient.ErrNotStored) {
		t.Fatalf("dup add: %v", err)
	}
	if err := c.Append("k", []byte("-b")); err != nil {
		t.Fatal(err)
	}
	if err := c.Prepend("k", []byte("a-")); err != nil {
		t.Fatal(err)
	}
	it, _ := c.Get("k")
	if string(it.Value) != "a-mid-b" {
		t.Fatalf("value = %q", it.Value)
	}

	gitem, err := c.Gets("k")
	if err != nil || gitem.CAS == 0 {
		t.Fatalf("gets: %v cas=%d", err, gitem.CAS)
	}
	if err := c.CAS("k", []byte("new"), 0, 0, gitem.CAS); err != nil {
		t.Fatalf("cas: %v", err)
	}
	if err := c.CAS("k", []byte("newer"), 0, 0, gitem.CAS); !errors.Is(err, kvclient.ErrExists) {
		t.Fatalf("stale cas: %v", err)
	}

	c.Set("n", []byte("41"), 0, 0)
	if v, err := c.Incr("n", 1); err != nil || v != 42 {
		t.Fatalf("incr: %d %v", v, err)
	}
	if v, err := c.Decr("n", 2); err != nil || v != 40 {
		t.Fatalf("decr: %d %v", v, err)
	}
	if err := c.Touch("n", 1000); err != nil {
		t.Fatal(err)
	}
	if err := c.Delete("n"); err != nil {
		t.Fatal(err)
	}
	if err := c.Delete("n"); !errors.Is(err, kvclient.ErrNotFound) {
		t.Fatalf("double delete: %v", err)
	}

	ver, err := c.Version()
	if err != nil || ver == "" {
		t.Fatalf("version: %q %v", ver, err)
	}

	stats, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if stats["cmd_set"] == "" {
		t.Fatalf("stats missing cmd_set: %v", stats)
	}

	if err := c.FlushAll(0); err != nil {
		t.Fatal(err)
	}
}

func TestEndToEndGetMulti(t *testing.T) {
	_, addr := startServer(t)
	c, _ := kvclient.Dial(addr)
	defer c.Close()
	for i := 0; i < 5; i++ {
		c.Set(fmt.Sprintf("k%d", i), []byte(fmt.Sprintf("v%d", i)), 0, 0)
	}
	items, err := c.GetMulti([]string{"k0", "k2", "k4", "missing"})
	if err != nil {
		t.Fatal(err)
	}
	if len(items) != 3 {
		t.Fatalf("got %d items", len(items))
	}
	if string(items["k2"].Value) != "v2" {
		t.Fatalf("k2 = %q", items["k2"].Value)
	}
}

func TestEndToEndLargeValue(t *testing.T) {
	_, addr := startServer(t)
	c, _ := kvclient.Dial(addr)
	defer c.Close()
	big := make([]byte, 512<<10)
	for i := range big {
		big[i] = byte(i)
	}
	if err := c.Set("big", big, 0, 0); err != nil {
		t.Fatal(err)
	}
	it, err := c.Get("big")
	if err != nil {
		t.Fatal(err)
	}
	if len(it.Value) != len(big) {
		t.Fatalf("len = %d", len(it.Value))
	}
	for i := range big {
		if it.Value[i] != big[i] {
			t.Fatalf("corruption at byte %d", i)
		}
	}
}

func TestManyConcurrentClients(t *testing.T) {
	srv, addr := startServer(t)
	var wg sync.WaitGroup
	const clients = 16
	for g := 0; g < clients; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			c, err := kvclient.Dial(addr)
			if err != nil {
				t.Error(err)
				return
			}
			defer c.Close()
			for i := 0; i < 100; i++ {
				key := fmt.Sprintf("g%d-k%d", g, i)
				if err := c.Set(key, []byte("v"), 0, 0); err != nil {
					t.Error(err)
					return
				}
				if _, err := c.Get(key); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if srv.Accepted() != clients {
		t.Fatalf("accepted = %d, want %d", srv.Accepted(), clients)
	}
}

func TestServerCloseIdempotent(t *testing.T) {
	srv, _ := startServer(t)
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestServeBeforeListen(t *testing.T) {
	st, _ := kvstore.New(kvstore.DefaultConfig(16 << 20))
	srv := New(st, nil)
	if err := srv.Serve(); err == nil {
		t.Fatal("Serve before Listen should error")
	}
}

func TestMaxConnsLimit(t *testing.T) {
	st, _ := kvstore.New(kvstore.DefaultConfig(16 << 20))
	srv := NewWithOptions(st, nil, Options{MaxConns: 2})
	if err := srv.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	go srv.Serve()
	defer srv.Close()
	addr := srv.Addr().String()

	c1, err := kvclient.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()
	c2, err := kvclient.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	// Exercise both so the server definitely registered them.
	c1.Set("a", []byte("1"), 0, 0)
	c2.Set("b", []byte("2"), 0, 0)

	// The third connection gets accepted by the kernel then closed by
	// the server; any operation on it must fail.
	c3, err := kvclient.Dial(addr)
	if err == nil {
		defer c3.Close()
		if err := c3.Set("c", []byte("3"), 0, 0); err == nil {
			t.Fatal("third connection should have been rejected")
		}
	}
	deadline := time.Now().Add(2 * time.Second)
	for srv.Rejected() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("rejected counter never bumped")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestIdleTimeoutClosesConnection(t *testing.T) {
	st, _ := kvstore.New(kvstore.DefaultConfig(16 << 20))
	srv := NewWithOptions(st, nil, Options{IdleTimeout: 50 * time.Millisecond})
	if err := srv.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	go srv.Serve()
	defer srv.Close()

	c, err := kvclient.Dial(srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Set("k", []byte("v"), 0, 0); err != nil {
		t.Fatal(err)
	}
	time.Sleep(300 * time.Millisecond) // exceed the idle timeout
	if _, err := c.Get("k"); err == nil {
		t.Fatal("idle connection should have been closed by the server")
	}
	if srv.Active() != 0 {
		t.Fatalf("active = %d after idle close", srv.Active())
	}
}

func TestBinaryProtocolOverTCP(t *testing.T) {
	_, addr := startServer(t)
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Binary SET k=v then GET, hand-framed.
	set := make([]byte, 24+8+1+1)
	set[0] = 0x80
	set[1] = 0x01                          // set
	binary.BigEndian.PutUint16(set[2:], 1) // key len
	set[4] = 8                             // extras len
	binary.BigEndian.PutUint32(set[8:], 8+1+1)
	copy(set[24+8:], "k")
	set[24+8+1] = 'v'
	get := make([]byte, 24+1)
	get[0] = 0x80
	binary.BigEndian.PutUint16(get[2:], 1)
	binary.BigEndian.PutUint32(get[8:], 1)
	copy(get[24:], "k")
	if _, err := conn.Write(append(set, get...)); err != nil {
		t.Fatal(err)
	}
	// Read the SET response (24B) and GET response (24+4+1).
	resp := make([]byte, 24+24+4+1)
	if _, err := io.ReadFull(conn, resp); err != nil {
		t.Fatal(err)
	}
	if resp[0] != 0x81 {
		t.Fatalf("response magic %#x", resp[0])
	}
	if status := binary.BigEndian.Uint16(resp[6:]); status != 0 {
		t.Fatalf("set status %d", status)
	}
	getResp := resp[24:]
	if status := binary.BigEndian.Uint16(getResp[6:]); status != 0 {
		t.Fatalf("get status %d", status)
	}
	if got := getResp[24+4]; got != 'v' {
		t.Fatalf("value byte %q", got)
	}
}

func TestUDPGetRoundTrip(t *testing.T) {
	srv, _ := startServer(t)
	udp, err := srv.ListenUDP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer udp.Close()
	srv.Store().Set("udp-key", []byte("udp-value"), 9, 0)

	c, err := kvclient.DialUDP(udp.Addr().String(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	it, err := c.Get("udp-key")
	if err != nil {
		t.Fatal(err)
	}
	if string(it.Value) != "udp-value" || it.Flags != 9 {
		t.Fatalf("item = %+v", it)
	}
	if _, err := c.Get("absent"); !errors.Is(err, kvclient.ErrNotFound) {
		t.Fatalf("miss err = %v", err)
	}
	if udp.Handled() < 2 {
		t.Fatalf("handled = %d", udp.Handled())
	}
}

func TestUDPMultiDatagramResponse(t *testing.T) {
	srv, _ := startServer(t)
	udp, err := srv.ListenUDP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer udp.Close()
	big := make([]byte, 8000) // spans several fragments
	for i := range big {
		big[i] = byte('a' + i%26)
	}
	srv.Store().Set("big", big, 0, 0)

	c, err := kvclient.DialUDP(udp.Addr().String(), 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	it, err := c.Get("big")
	if err != nil {
		t.Fatal(err)
	}
	if len(it.Value) != len(big) {
		t.Fatalf("len = %d, want %d", len(it.Value), len(big))
	}
	for i := range big {
		if it.Value[i] != big[i] {
			t.Fatalf("corruption at %d", i)
		}
	}
}

func TestUDPMalformedDatagramsDropped(t *testing.T) {
	srv, _ := startServer(t)
	udp, err := srv.ListenUDP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer udp.Close()
	conn, err := net.Dial("udp", udp.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.Write([]byte{1, 2, 3})                          // shorter than the header
	conn.Write([]byte{0, 1, 0, 5, 0, 9, 0, 0, 'g', 'x'}) // fragmented request
	deadline := time.Now().Add(2 * time.Second)
	for udp.Dropped() < 2 {
		if time.Now().After(deadline) {
			t.Fatalf("dropped = %d, want 2", udp.Dropped())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestCloseReleasesAllGoroutines exercises the full TCP+UDP lifecycle
// explicitly: the leak check registered by startServer (which runs
// after every cleanup) is the assertion — accept loop, per-connection
// handlers and the UDP read loop must all exit once Close returns.
func TestCloseReleasesAllGoroutines(t *testing.T) {
	srv, addr := startServer(t)
	udp, err := srv.ListenUDP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer udp.Close()

	c, err := kvclient.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Set("k", []byte("v"), 0, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Get("k"); err != nil {
		t.Fatal(err)
	}
	c.Close()

	uc, err := net.Dial("udp", udp.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer uc.Close()
	req := append([]byte{0, 9, 0, 0, 0, 1, 0, 0}, "get k\r\n"...)
	if _, err := uc.Write(req); err != nil {
		t.Fatal(err)
	}
	uc.SetReadDeadline(time.Now().Add(2 * time.Second))
	resp := make([]byte, 2048)
	if _, err := uc.Read(resp); err != nil {
		t.Fatalf("udp response: %v", err)
	}
}
