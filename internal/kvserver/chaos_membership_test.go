package kvserver_test

// Live chaos membership suite: three (or four) real servers wired with
// Replicators and Migrators, a real ClusterClient, and the test acting
// as control plane — applying joins and leaves to every node's
// Membership the way a deployment's configuration push would. The
// invariants under test are the PR's acceptance bars:
//
//   - zero lost acknowledged quorum writes: every SetMode(ReplQuorum)
//     that returned nil is readable after the chaos, whatever died;
//   - bounded staleness for async writes: after Drain, every
//     acknowledged async write is readable;
//   - migration completes across membership churn, and every node's
//     membership view converges (View.Equal — same version, members,
//     and ownership epochs).

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"kv3d/internal/cluster"
	"kv3d/internal/faults"
	"kv3d/internal/faults/faultnet"
	"kv3d/internal/kvclient"
	"kv3d/internal/kvserver"
	"kv3d/internal/kvstore"
	"kv3d/internal/protocol"
	"kv3d/internal/sim"
	"kv3d/internal/testutil"
)

const chaosVirtualNodes = 64

// replAdapter adapts kvclient.BinaryClient to kvserver.ReplConn,
// folding the delete-of-absent case to success per the contract.
type replAdapter struct{ *kvclient.BinaryClient }

func (a replAdapter) DeleteWithMode(key string, mode protocol.ReplMode) error {
	err := a.BinaryClient.DeleteWithMode(key, mode)
	if errors.Is(err, kvclient.ErrNotFound) {
		return nil
	}
	return err
}

func (a replAdapter) TouchWithMode(key string, exptime int64, mode protocol.ReplMode) error {
	err := a.BinaryClient.TouchWithMode(key, exptime, mode)
	if errors.Is(err, kvclient.ErrNotFound) {
		return nil
	}
	return err
}

func replDial(addr string) (kvserver.ReplConn, error) {
	bc, err := kvclient.DialBinaryOptions(addr, kvclient.Options{
		DialTimeout: time.Second, OpTimeout: time.Second,
	})
	if err != nil {
		return nil, err
	}
	return replAdapter{bc}, nil
}

// chaosNode is one live server plus its cluster-layer wiring.
type chaosNode struct {
	addr string
	srv  *kvserver.Server
	st   *kvstore.Store
	mem  *cluster.Membership
	repl *kvserver.Replicator
	mig  *kvserver.Migrator
}

// chaosHarness is the control plane: it owns the membership history so
// every node (including late joiners, which replay it) applies the
// same deltas in the same order and converges to equal views.
type chaosHarness struct {
	t     *testing.T
	mode  protocol.ReplMode
	nodes []*chaosNode
	// history records every membership transition; appends happen only
	// from the harness's control-plane calls (join/leave), which the
	// scenarios serialize.
	history []func(*cluster.Membership)
}

func newChaosHarness(t *testing.T, n int, mode protocol.ReplMode) *chaosHarness {
	t.Helper()
	testutil.CheckGoroutines(t)
	h := &chaosHarness{t: t, mode: mode}
	for i := 0; i < n; i++ {
		h.join(h.startNode())
	}
	return h
}

// startNode boots a server with an empty membership; join wires it in.
func (h *chaosHarness) startNode() *chaosNode {
	t := h.t
	t.Helper()
	st, err := kvstore.New(kvstore.DefaultConfig(32 << 20))
	if err != nil {
		t.Fatal(err)
	}
	srv := kvserver.New(st, nil)
	if err := srv.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	n := &chaosNode{
		addr: srv.Addr().String(),
		srv:  srv,
		st:   st,
		mem:  cluster.NewMembership(chaosVirtualNodes),
	}
	n.repl, err = kvserver.NewReplicator(kvserver.ReplOptions{
		Self:          n.addr,
		Membership:    n.mem,
		Replicas:      2,
		DefaultMode:   h.mode,
		QuorumTimeout: 2 * time.Second,
		Dial:          replDial,
	})
	if err != nil {
		t.Fatal(err)
	}
	n.mig, err = kvserver.NewMigrator(kvserver.MigOptions{Store: st})
	if err != nil {
		t.Fatal(err)
	}
	srv.SetReplicator(n.repl)
	srv.SetMigrator(n.mig)
	go srv.Serve()
	t.Cleanup(func() {
		srv.Close()
		n.mig.Close()
		n.repl.Close()
	})
	return n
}

// join replays the membership history into a fresh node, then applies
// its join everywhere — the control-plane push.
func (h *chaosHarness) join(n *chaosNode) {
	for _, op := range h.history {
		op(n.mem)
	}
	addr := n.addr
	op := func(m *cluster.Membership) { m.Join(addr, 1) }
	h.history = append(h.history, op)
	h.nodes = append(h.nodes, n)
	for _, node := range h.nodes {
		op(node.mem)
	}
}

// leave applies a leave everywhere; the node object stays alive (a
// graceful leaver keeps serving while it drains).
func (h *chaosHarness) leave(addr string) {
	op := func(m *cluster.Membership) { m.Leave(addr) }
	h.history = append(h.history, op)
	for _, node := range h.nodes {
		op(node.mem)
	}
}

// assertViewsConverge checks every live node agrees on members,
// version, and ownership epochs.
func (h *chaosHarness) assertViewsConverge(skip map[string]bool) {
	h.t.Helper()
	var ref *chaosNode
	for _, n := range h.nodes {
		if skip[n.addr] {
			continue
		}
		if ref == nil {
			ref = n
			continue
		}
		if !ref.mem.View().Equal(n.mem.View()) {
			h.t.Fatalf("membership views diverge:\n%s: %+v\n%s: %+v",
				ref.addr, ref.mem.View(), n.addr, n.mem.View())
		}
	}
}

// drainAll flushes every node's async replication queue — the bounded-
// staleness bar for async writes.
func (h *chaosHarness) drainAll(skip map[string]bool) {
	h.t.Helper()
	for _, n := range h.nodes {
		if skip[n.addr] {
			continue
		}
		if err := n.repl.Drain(5 * time.Second); err != nil {
			h.t.Fatalf("drain %s: %v", n.addr, err)
		}
	}
}

// addrs lists the current nodes' serving addresses.
func (h *chaosHarness) addrs() []string {
	var out []string
	for _, n := range h.nodes {
		out = append(out, n.addr)
	}
	return out
}

// client builds a binary ClusterClient over the harness nodes, with
// the same virtual-node count as the memberships so client-side and
// server-side placement agree.
func (h *chaosHarness) client(replicas int) *kvclient.ClusterClient {
	h.t.Helper()
	cc, err := kvclient.NewCluster(kvclient.ClusterConfig{
		Addrs:        h.addrs(),
		Replicas:     replicas,
		VirtualNodes: chaosVirtualNodes,
		Binary:       true,
		EjectAfter:   1,
		Probation:    time.Minute,
		DialTimeout:  time.Second,
		OpTimeout:    time.Second,
		Sleep:        func(time.Duration) {},
	})
	if err != nil {
		h.t.Fatal(err)
	}
	h.t.Cleanup(func() { cc.Close() })
	return cc
}

// migrateTo streams, from every existing node, the keys addr now owns.
// Returns the started streams.
func (h *chaosHarness) migrateTo(addr string, rate int) []*kvserver.MigrationStream {
	h.t.Helper()
	var streams []*kvserver.MigrationStream
	for _, n := range h.nodes {
		if n.addr == addr {
			continue
		}
		mem := n.mem
		st, err := n.mig.Start(kvserver.StreamOptions{
			Target:         addr,
			RateKeysPerSec: rate,
			Owned: func(k string) bool {
				owners, err := mem.LocateN(k, 2)
				if err != nil {
					return false
				}
				for _, o := range owners {
					if o == addr {
						return true
					}
				}
				return false
			},
		})
		if err != nil {
			h.t.Fatal(err)
		}
		streams = append(streams, st)
	}
	return streams
}

// TestChaosLiveJoinDuringFlashCrowd: a node joins mid-storm, injected
// through a faults plan replayed by the faultnet driver (the same
// vocabulary the simulator uses). Writers never stop; after the join,
// key-range migration streams hand the joiner its ranges. Every
// acknowledged async write must be readable afterwards.
func TestChaosLiveJoinDuringFlashCrowd(t *testing.T) {
	h := newChaosHarness(t, 3, protocol.ReplAsync)
	cc := h.client(2)

	type acked struct{ key, val string }
	var (
		ackMu sync.Mutex
		acks  []acked
	)
	const writers, perWriter = 4, 150
	var wg sync.WaitGroup
	joined := make(chan struct{})

	// The membership event arrives via the faults vocabulary: a plan
	// with one node-join, replayed in real time by the driver, whose
	// callback is the control plane.
	plan := &faults.Plan{Horizon: sim.Second, Events: []faults.Event{
		{At: 30 * sim.Millisecond, Kind: faults.NodeJoin, Target: "joiner"},
	}}
	driver := faultnet.NewDriver(plan, func(ev faults.Event) {
		if ev.Kind != faults.NodeJoin {
			return
		}
		n := h.startNode()
		h.join(n)
		cc.AddNode(n.addr)
		close(joined)
	})
	driver.Start()
	defer driver.Stop()

	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				k := fmt.Sprintf("fc-%d-%d", w, i)
				v := fmt.Sprintf("v-%d-%d", w, i)
				if err := cc.SetMode(k, []byte(v), 0, 0, protocol.ReplAsync); err == nil {
					ackMu.Lock()
					acks = append(acks, acked{k, v})
					ackMu.Unlock()
				}
			}
		}(w)
	}

	<-joined
	joinerAddr := h.nodes[len(h.nodes)-1].addr
	streams := h.migrateTo(joinerAddr, 0)
	for _, st := range streams {
		if err := st.Wait(); err != nil {
			t.Fatalf("migration stream: %v", err)
		}
	}
	wg.Wait()
	driver.Wait()

	// Ownership epochs converge across all four nodes.
	h.assertViewsConverge(nil)
	// Bounded staleness: drain async queues, then every ack is readable.
	h.drainAll(nil)
	if len(acks) == 0 {
		t.Fatal("no write was acknowledged during the flash crowd")
	}
	for _, a := range acks {
		it, err := cc.Get(a.key)
		if err != nil {
			t.Fatalf("acked async write %q lost after join: %v", a.key, err)
		}
		if string(it.Value) != a.val {
			t.Fatalf("acked async write %q = %q, want %q", a.key, it.Value, a.val)
		}
	}
}

// TestChaosLiveKillReplicaMidQuorumWrite: a replica dies while quorum
// writes are in flight. Writes that lose their quorum fail visibly
// (ErrNoQuorum / transport error, not silent success); every write
// that WAS acknowledged must be readable from the survivors.
func TestChaosLiveKillReplicaMidQuorumWrite(t *testing.T) {
	h := newChaosHarness(t, 3, protocol.ReplQuorum)
	cc := h.client(2)

	type acked struct{ key, val string }
	var acks []acked
	var failed int
	const total = 300
	victim := h.nodes[1]
	for i := 0; i < total; i++ {
		if i == total/3 {
			// Kill the replica mid-storm — no drain, no warning. Its
			// membership entry stays (a crash is not a leave), so
			// quorum math keeps counting it as an owner.
			victim.srv.Close()
		}
		k := fmt.Sprintf("qw-%d", i)
		v := fmt.Sprintf("qv-%d", i)
		err := cc.SetMode(k, []byte(v), 0, 0, protocol.ReplQuorum)
		if err == nil {
			acks = append(acks, acked{k, v})
		} else {
			failed++
		}
	}
	if len(acks) == 0 {
		t.Fatal("no quorum write was acknowledged")
	}
	if failed == 0 {
		t.Fatal("killing a replica of every second key failed no quorum write — acks are lying")
	}

	skip := map[string]bool{victim.addr: true}
	h.drainAll(skip)
	// Zero lost acknowledged quorum writes: every ack is readable from
	// the surviving replicas (the client fails over off the corpse).
	for _, a := range acks {
		it, err := cc.Get(a.key)
		if err != nil {
			t.Fatalf("acked quorum write %q lost after replica kill: %v", a.key, err)
		}
		if string(it.Value) != a.val {
			t.Fatalf("acked quorum write %q = %q, want %q", a.key, it.Value, a.val)
		}
	}
	h.assertViewsConverge(nil)
}

// TestChaosLiveLeaveWithInFlightMigration: a node starts handing off
// its ranges, and the membership leave lands while the streams are
// still in flight — the push outruns the data. The streams must still
// complete (the leaver keeps serving while it drains) and no key may
// be lost once it goes dark.
func TestChaosLiveLeaveWithInFlightMigration(t *testing.T) {
	h := newChaosHarness(t, 4, protocol.ReplAsync)
	cc := h.client(2)

	const n = 400
	want := map[string]string{}
	for i := 0; i < n; i++ {
		k := fmt.Sprintf("lv-%d", i)
		v := fmt.Sprintf("lval-%d", i)
		if err := cc.SetMode(k, []byte(v), 0, 0, protocol.ReplAsync); err != nil {
			t.Fatalf("seed %q: %v", k, err)
		}
		want[k] = v
	}
	h.drainAll(nil)

	leaver := h.nodes[3]
	// Post-leave placement, computed on a scratch membership that
	// replays the same history minus the leaver: each remaining node
	// receives the keys it will own once the leaver is gone.
	scratch := cluster.NewMembership(chaosVirtualNodes)
	for _, node := range h.nodes {
		if node.addr != leaver.addr {
			scratch.Join(node.addr, 1)
		}
	}
	var streams []*kvserver.MigrationStream
	for _, node := range h.nodes[:3] {
		target := node.addr
		st, err := leaver.mig.Start(kvserver.StreamOptions{
			Target:         target,
			RateKeysPerSec: 400, // slow enough that the leave lands mid-stream
			Owned: func(k string) bool {
				owners, err := scratch.LocateN(k, 2)
				return err == nil && owners[0] == target
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		streams = append(streams, st)
	}

	// The leave lands while the streams are in flight.
	h.leave(leaver.addr)
	cc.RemoveNode(leaver.addr)

	for _, st := range streams {
		if err := st.Wait(); err != nil {
			t.Fatalf("in-flight migration broken by leave: %v", err)
		}
	}
	// Handoff done: now the leaver may actually go dark.
	leaver.srv.Close()

	skip := map[string]bool{leaver.addr: true}
	h.assertViewsConverge(nil) // every node, leaver included, saw the leave
	h.drainAll(skip)
	for k, v := range want {
		it, err := cc.Get(k)
		if err != nil {
			t.Fatalf("key %q lost across leave+migration: %v", k, err)
		}
		if string(it.Value) != v {
			t.Fatalf("key %q = %q, want %q", k, it.Value, v)
		}
	}
}
