package kvserver

import (
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"kv3d/internal/kvclient"
)

// Race-regression coverage for the statsMu-guarded UDP counters: handle
// runs in one goroutine per datagram, so handled/dropped are bumped
// concurrently while the Handled/Dropped getters poll from outside.
// Under `go test -race` (the CI configuration) any regression to
// unsynchronized counters fails here; the exact-count assertions also
// catch lost updates without the detector.
func TestUDPStatsConcurrentWithTraffic(t *testing.T) {
	srv, _ := startServer(t)
	udp, err := srv.ListenUDP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer udp.Close()
	if err := srv.Store().Set("k", []byte("v"), 0, 0); err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var pollers sync.WaitGroup
	for p := 0; p < 3; p++ {
		pollers.Add(1)
		go func() {
			defer pollers.Done()
			for {
				select {
				case <-stop:
					return
				default:
					_ = udp.Handled()
					_ = udp.Dropped()
				}
			}
		}()
	}

	const clients = 6
	const perClient = 50
	var answered sync.WaitGroup
	var got [clients]int
	for c := 0; c < clients; c++ {
		answered.Add(1)
		go func(c int) {
			defer answered.Done()
			cl, err := kvclient.DialUDP(udp.Addr().String(), 2*time.Second)
			if err != nil {
				t.Errorf("dial: %v", err)
				return
			}
			defer cl.Close()
			for i := 0; i < perClient; i++ {
				if _, err := cl.Get("k"); err == nil {
					got[c]++
				}
			}
		}(c)
	}

	// Malformed traffic in parallel bumps the dropped counter.
	const malformed = 40
	conn, err := net.Dial("udp", udp.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	for i := 0; i < malformed; i++ {
		if _, err := conn.Write([]byte{1, 2, 3}); err != nil {
			t.Fatal(err)
		}
	}

	answered.Wait()
	close(stop)
	pollers.Wait()

	totalGot := 0
	for c, n := range got {
		if n == 0 {
			t.Errorf("client %d got zero answers", c)
		}
		totalGot += n
	}
	// Every answered Get was counted by exactly one handler goroutine;
	// retried/timed-out requests may add more, never fewer.
	waitCounter(t, "handled", udp.Handled, uint64(totalGot))
	waitCounter(t, "dropped", udp.Dropped, malformed)
}

// waitCounter polls a stats getter until it reaches want (the serve loop
// may still be draining datagrams after the clients return).
func waitCounter(t *testing.T, name string, get func() uint64, want uint64) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for {
		if got := get(); got >= want {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("%s = %d, want >= %d", name, get(), want)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestUDPCloseDuringTraffic closes the listener while handlers are in
// flight; the serve loop and handlers share the closed flag and the
// socket, so this must shut down race-free without panics.
func TestUDPCloseDuringTraffic(t *testing.T) {
	srv, _ := startServer(t)
	udp, err := srv.ListenUDP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	big := make([]byte, 32<<10) // multi-datagram responses keep handlers busy
	if err := srv.Store().Set("big", big, 0, 0); err != nil {
		t.Fatal(err)
	}

	conn, err := net.Dial("udp", udp.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	payload := "get big\r\n"
	frame := make([]byte, 8+len(payload))
	frame[1] = 1 // request id 1
	frame[5] = 1 // datagram count 1
	copy(frame[8:], payload)
	for i := 0; i < 64; i++ {
		if _, err := conn.Write(frame); err != nil {
			t.Fatal(err)
		}
	}
	if err := udp.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	// Closing twice must stay safe.
	_ = udp.Close()
	_ = fmt.Sprintf("%d/%d", udp.Handled(), udp.Dropped())
}
