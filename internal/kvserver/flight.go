package kvserver

// Flight recording: the server forwards sampled protocol.OpSpan phase
// timelines and its own lifecycle events (connection open/close,
// refusals, drain) into an obs.FlightRecorder ring. Each transport gets
// its own track so a merged trace shows ASCII, binary, and UDP lanes
// side by side; binary spans additionally emit async begin/end events
// keyed by the request's opaque field, which is what lets a client's
// attempt span line up with this server's handling of that exact
// request in one Perfetto view.

import (
	"kv3d/internal/kvstore"
	"kv3d/internal/obs"
	"kv3d/internal/protocol"
	"kv3d/internal/sim"
)

// flightSink adapts one transport's sampled spans onto recorder events.
// It implements protocol.SpanObserver; sessions call ObserveSpan from
// their connection goroutines (the recorder ring is the synchronization).
type flightSink struct {
	rec   *obs.FlightRecorder
	track obs.TrackID
}

// ObserveSpan renders one op as an enclosing span (named by class,
// outcome in args) plus its parse / execute / write phase children,
// and — when the request carried a nonzero binary opaque — an async
// op span correlating it across the wire.
//
//kv3d:hotpath
func (f *flightSink) ObserveSpan(sp protocol.OpSpan) {
	name := sp.Class.String()
	f.rec.Complete(f.track, name, sp.Outcome.String(), sp.Start, sp.End)
	f.rec.Complete(f.track, "parse", "", sp.Start, sp.ParseDone)
	f.rec.Complete(f.track, "execute", "", sp.ParseDone, sp.ExecDone)
	f.rec.Complete(f.track, "write", "", sp.ExecDone, sp.End)
	if sp.Opaque != 0 {
		f.rec.AsyncBegin("op", name, sp.Opaque, sp.Start)
		f.rec.AsyncEnd("op", name, sp.Opaque, sp.End)
	}
}

// serverFlight holds the server's recorder wiring: one lifecycle track
// plus one sink per transport. All fields are set at construction and
// immutable afterwards.
type serverFlight struct {
	rec        *obs.FlightRecorder
	every      int
	life       obs.TrackID
	batch      obs.TrackID
	asciiSink  flightSink
	binarySink flightSink
	udpSink    flightSink
}

// newServerFlight registers the server's tracks on the recorder.
func newServerFlight(rec *obs.FlightRecorder, every int) *serverFlight {
	if every < 1 {
		every = DefaultFlightEvery
	}
	return &serverFlight{
		rec:        rec,
		every:      every,
		life:       rec.RegisterTrack("srv.lifecycle"),
		batch:      rec.RegisterTrack("srv.batch"),
		asciiSink:  flightSink{rec: rec, track: rec.RegisterTrack("srv.ascii")},
		binarySink: flightSink{rec: rec, track: rec.RegisterTrack("srv.binary")},
		udpSink:    flightSink{rec: rec, track: rec.RegisterTrack("srv.udp")},
	}
}

// DefaultFlightEvery is the sampling interval used when Options.Flight
// is set without an explicit FlightEvery: one op in 64 is traced, which
// keeps the recording cost negligible on the hot path while a busy
// server still fills the ring within seconds.
const DefaultFlightEvery = 64

// lifecycle event helpers; all nil-safe via the recorder contract.

func (sf *serverFlight) connOpen(ts sim.Ns)  { sf.rec.Instant(sf.life, "conn.open", ts) }
func (sf *serverFlight) connClose(ts sim.Ns) { sf.rec.Instant(sf.life, "conn.close", ts) }

func (sf *serverFlight) reject(reason RejectReason, ts sim.Ns) {
	switch reason {
	case RejectMaxConns:
		sf.rec.Instant(sf.life, "reject.max_conns", ts)
	case RejectDraining:
		sf.rec.Instant(sf.life, "reject.draining", ts)
	default:
		sf.rec.Instant(sf.life, "reject.busy", ts)
	}
}

func (sf *serverFlight) drainBegin(ts sim.Ns)  { sf.rec.Instant(sf.life, "server.drain.begin", ts) }
func (sf *serverFlight) drainEnd(ts sim.Ns)    { sf.rec.Instant(sf.life, "server.drain.end", ts) }
func (sf *serverFlight) serverClose(ts sim.Ns) { sf.rec.Instant(sf.life, "server.close", ts) }

func (sf *serverFlight) activeConns(ts sim.Ns, n int64) {
	sf.rec.Counter(sf.life, "conns.active", ts, n)
}

// batchRound is the coalescer's OnRound hook: each store round shows as
// a batch.flush span on the srv.batch track (arg = "get"/"set"), with a
// batch.size counter tracking ops per round. Rounds are observed from
// whichever connection goroutine happened to be leading; the recorder
// ring is the synchronization.
//
//kv3d:hotpath
func (sf *serverFlight) batchRound(kind kvstore.RoundKind, _, ops int, startNs, endNs int64) {
	if !sf.rec.Enabled() {
		return
	}
	sf.rec.Complete(sf.batch, "batch.flush", kind.String(), sim.Ns(startNs), sim.Ns(endNs))
	sf.rec.Counter(sf.batch, "batch.size", sim.Ns(endNs), int64(ops))
}
