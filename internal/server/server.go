// Package server composes stacks into a 1.5U Mercury or Iridium server:
// it runs the stack simulation across the paper's request-size sweep,
// applies the power/area/port constraints from phys, and produces the
// rows of Table 3, Table 4 and Figures 7–8.
package server

import (
	"fmt"

	"kv3d/internal/cache"
	"kv3d/internal/cpu"
	"kv3d/internal/memmodel"
	"kv3d/internal/phys"
	"kv3d/internal/sim"
	"kv3d/internal/stackmodel"
)

// Design names one server configuration (e.g. "Mercury-8 on A7").
type Design struct {
	Name          string
	Core          cpu.Core
	Cache         cache.Hierarchy
	Mem           memmodel.Device
	CoresPerStack int
}

// Mercury builds the DRAM-based design at the default 10ns latency.
func Mercury(core cpu.Core, coresPerStack int) Design {
	return Design{
		Name:          fmt.Sprintf("Mercury-%d", coresPerStack),
		Core:          core,
		Cache:         cache.L2MB2(),
		Mem:           memmodel.MustDRAM3D(10 * sim.Nanosecond),
		CoresPerStack: coresPerStack,
	}
}

// Iridium builds the Flash-based design at 10µs reads / 200µs writes.
func Iridium(core cpu.Core, coresPerStack int) Design {
	return Design{
		Name:          fmt.Sprintf("Iridium-%d", coresPerStack),
		Core:          core,
		Cache:         cache.L2MB2(),
		Mem:           memmodel.MustFlash3D(10*sim.Microsecond, 200*sim.Microsecond),
		CoresPerStack: coresPerStack,
	}
}

// Evaluation is the measured server-level outcome of a Design.
type Evaluation struct {
	Design Design

	// Stacks is the number of stacks fitted, and LimitedBy the binding
	// constraint (power / area / ports).
	Stacks    int
	LimitedBy phys.Constraint

	// Cores is stacks x cores-per-stack.
	Cores int
	// DensityBytes is total storage capacity.
	DensityBytes int64
	// AreaCM2 is the consumed board area.
	AreaCM2 float64

	// MaxBWBytesPerSec is the highest payload bandwidth observed across
	// the 64B–1MB sweep; PowerMaxW is wall power at that operating point
	// (the Table 3 "Power" row).
	MaxBWBytesPerSec float64
	PowerMaxW        float64

	// TPS64B is server throughput on 64B GETs; Power64BW the wall power
	// at that point (the Table 4 figures); BW64BBytesPerSec its payload
	// bandwidth.
	TPS64B           float64
	Power64BW        float64
	BW64BBytesPerSec float64

	// MeanRTT64B is the per-request latency at 64B.
	MeanRTT64B sim.Duration
	// SubMsFraction64B is the fraction of 64B GETs under 1ms.
	SubMsFraction64B float64
}

// TPSPerWatt returns the Table 4 efficiency metric.
func (e Evaluation) TPSPerWatt() float64 {
	if e.Power64BW <= 0 {
		return 0
	}
	return e.TPS64B / e.Power64BW
}

// TPSPerGB returns the Table 4 accessibility metric.
func (e Evaluation) TPSPerGB() float64 {
	gb := float64(e.DensityBytes) / (1 << 30)
	if gb <= 0 {
		return 0
	}
	return e.TPS64B / gb
}

// sweepSizes is the request-size subset used to locate the bandwidth
// peak; the full 64B–1MB sweep belongs to Figures 5–6.
var sweepSizes = []int64{64, 4 << 10, 64 << 10, 1 << 20}

// requestsPerRun keeps evaluation cheap while averaging queueing noise.
const requestsPerRun = 30

// Evaluate measures one design end to end. Following the paper's
// methodology (§5.1, §5.3), per-core throughput is measured on a
// single-core stack running one memcached instance, then scaled
// linearly to the stack and server level. (Port sharing at n=32 is
// validated separately in the stackmodel tests and ablation benches;
// at 64B requests its effect is negligible. A shared 10GbE port would
// cap large-value payload bandwidth at 1.25 GB/s per stack — the paper's
// max-bandwidth row scales the per-core memory bandwidth instead, and we
// reproduce that accounting.)
func Evaluate(d Design) (Evaluation, error) {
	cfg := stackmodel.Config{
		Core:          d.Core,
		Cache:         d.Cache,
		Mem:           d.Mem,
		CoresPerStack: d.CoresPerStack,
	}
	if err := cfg.Validate(); err != nil {
		return Evaluation{}, err
	}
	oneCore := cfg
	oneCore.CoresPerStack = 1

	n := float64(d.CoresPerStack)
	var (
		maxBWPerStack float64
		bw64PerStack  float64
		tps64PerStack float64
		rtt64         sim.Duration
		subMs         float64
	)
	for _, size := range sweepSizes {
		st, err := stackmodel.NewStack(oneCore)
		if err != nil {
			return Evaluation{}, err
		}
		res, err := st.Measure(stackmodel.Get, size, requestsPerRun)
		if err != nil {
			return Evaluation{}, err
		}
		bw := res.TPSPerCore * float64(size) * n
		if bw > maxBWPerStack {
			maxBWPerStack = bw
		}
		if size == 64 {
			bw64PerStack = bw
			tps64PerStack = res.TPSPerCore * n
			rtt64 = res.MeanRTT
			subMs = res.Hist.FractionBelow(int64(sim.Millisecond))
		}
	}

	// Fit stacks under the max-bandwidth power draw (the conservative
	// provisioning the paper uses for Table 3).
	stackPowerMax := phys.StackPowerW(d.Core, d.CoresPerStack, d.Mem, maxBWPerStack)
	stacks, limit := phys.MaxStacks(stackPowerMax)

	s := float64(stacks)
	stackPower64 := phys.StackPowerW(d.Core, d.CoresPerStack, d.Mem, bw64PerStack)
	return Evaluation{
		Design:           d,
		Stacks:           stacks,
		LimitedBy:        limit,
		Cores:            stacks * d.CoresPerStack,
		DensityBytes:     int64(s) * d.Mem.CapacityBytes(),
		AreaCM2:          phys.ServerAreaCM2(stacks),
		MaxBWBytesPerSec: maxBWPerStack * s,
		PowerMaxW:        phys.ServerPowerW(stackPowerMax, stacks),
		TPS64B:           tps64PerStack * s,
		Power64BW:        phys.ServerPowerW(stackPower64, stacks),
		BW64BBytesPerSec: bw64PerStack * s,
		MeanRTT64B:       rtt64,
		SubMsFraction64B: subMs,
	}, nil
}

// CoreConfigs returns the three core configurations of Table 3, in the
// paper's column order.
func CoreConfigs() []cpu.Core {
	return []cpu.Core{
		cpu.MustCortexA15(1.5e9),
		cpu.MustCortexA15(1e9),
		cpu.CortexA7(),
	}
}

// CoreCounts returns the per-stack core counts of Table 3.
func CoreCounts() []int { return []int{1, 2, 4, 8, 16, 32} }
