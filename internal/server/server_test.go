package server

import (
	"testing"

	"kv3d/internal/cpu"
	"kv3d/internal/memmodel"
	"kv3d/internal/phys"
)

func eval(t *testing.T, d Design) Evaluation {
	t.Helper()
	e, err := Evaluate(d)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestMercury32A7MatchesTable4(t *testing.T) {
	e := eval(t, Mercury(cpu.CortexA7(), 32))
	// Paper Table 4: 93 stacks, 2976 cores, 372GB, 597W, 32.70M TPS,
	// 54.77 KTPS/W, 87.91 KTPS/GB, 2.09 GB/s.
	if e.Stacks < 88 || e.Stacks > 96 {
		t.Fatalf("stacks = %d, paper says 93", e.Stacks)
	}
	if tps := e.TPS64B / 1e6; tps < 29 || tps > 37 {
		t.Fatalf("TPS = %.2fM, paper says 32.70M", tps)
	}
	if w := e.Power64BW; w < 540 || w > 660 {
		t.Fatalf("power = %.0fW, paper says 597W", w)
	}
	if tpw := e.TPSPerWatt() / 1e3; tpw < 49 || tpw > 60 {
		t.Fatalf("TPS/W = %.1fK, paper says 54.77K", tpw)
	}
	if tpg := e.TPSPerGB() / 1e3; tpg < 79 || tpg > 97 {
		t.Fatalf("TPS/GB = %.1fK, paper says 87.91K", tpg)
	}
	if bw := e.BW64BBytesPerSec / 1e9; bw < 1.8 || bw > 2.5 {
		t.Fatalf("64B bandwidth = %.2f GB/s, paper says 2.09", bw)
	}
}

func TestIridium32A7MatchesTable4(t *testing.T) {
	e := eval(t, Iridium(cpu.CortexA7(), 32))
	// Paper Table 4: 96 stacks, 1901GB, 611W, 16.49M TPS, 26.98 KTPS/W,
	// 8.67 KTPS/GB.
	if e.Stacks != 96 {
		t.Fatalf("stacks = %d, paper says 96", e.Stacks)
	}
	if gb := float64(e.DensityBytes) / (1 << 30); gb < 1870 || gb > 1930 {
		t.Fatalf("density = %.0fGB, paper says 1901", gb)
	}
	if tps := e.TPS64B / 1e6; tps < 13 || tps > 19 {
		t.Fatalf("TPS = %.2fM, paper says 16.49M", tps)
	}
	if tpw := e.TPSPerWatt() / 1e3; tpw < 22 || tpw > 31 {
		t.Fatalf("TPS/W = %.1fK, paper says 26.98K", tpw)
	}
}

func TestA15PowerLimitsDensity(t *testing.T) {
	// Paper Table 3: A15@1.5GHz Mercury-8 fits only ~50 stacks (200GB);
	// at 16 cores ~27; A7 keeps ~96 everywhere.
	e8 := eval(t, Mercury(cpu.MustCortexA15(1.5e9), 8))
	if e8.Stacks < 45 || e8.Stacks > 58 {
		t.Fatalf("A15@1.5 Mercury-8 stacks = %d, paper says 50", e8.Stacks)
	}
	if e8.LimitedBy != phys.LimitPower {
		t.Fatalf("limit = %s, want power", e8.LimitedBy)
	}
	e16 := eval(t, Mercury(cpu.MustCortexA15(1.5e9), 16))
	if e16.Stacks < 24 || e16.Stacks > 30 {
		t.Fatalf("A15@1.5 Mercury-16 stacks = %d, paper says 27", e16.Stacks)
	}
	a7 := eval(t, Mercury(cpu.CortexA7(), 16))
	if a7.Stacks != 96 {
		t.Fatalf("A7 Mercury-16 stacks = %d, paper says 96", a7.Stacks)
	}
	if a7.LimitedBy != phys.LimitPorts {
		t.Fatalf("A7 limit = %s, want ports", a7.LimitedBy)
	}
}

func TestA7MostEfficientAt32Cores(t *testing.T) {
	// §6.4: "A Mercury-32 system using A7s is the most efficient design."
	best := eval(t, Mercury(cpu.CortexA7(), 32))
	for _, core := range []cpu.Core{cpu.MustCortexA15(1e9), cpu.MustCortexA15(1.5e9)} {
		other := eval(t, Mercury(core, 32))
		if other.TPS64B >= best.TPS64B {
			t.Fatalf("%s Mercury-32 TPS %.1fM >= A7's %.1fM", core.Name(), other.TPS64B/1e6, best.TPS64B/1e6)
		}
		if other.TPSPerWatt() >= best.TPSPerWatt() {
			t.Fatalf("%s Mercury-32 TPS/W beats A7", core.Name())
		}
	}
}

func TestIridiumDensityVsMercury(t *testing.T) {
	// §6.3: Iridium-32 has ~5x Mercury-32's density at ~half the TPS.
	m := eval(t, Mercury(cpu.CortexA7(), 32))
	i := eval(t, Iridium(cpu.CortexA7(), 32))
	dens := float64(i.DensityBytes) / float64(m.DensityBytes)
	if dens < 4.5 || dens > 5.6 {
		t.Fatalf("Iridium/Mercury density = %.2f, paper says ~5x", dens)
	}
	tps := m.TPS64B / i.TPS64B
	if tps < 1.7 || tps > 2.6 {
		t.Fatalf("Mercury/Iridium TPS = %.2f, paper says ~2x", tps)
	}
}

func TestPowerNeverExceedsSupply(t *testing.T) {
	for _, core := range CoreConfigs() {
		for _, n := range CoreCounts() {
			for _, d := range []Design{Mercury(core, n), Iridium(core, n)} {
				e := eval(t, d)
				if e.PowerMaxW > phys.SupplyW {
					t.Errorf("%s on %s draws %.0fW > 750W supply", d.Name, core.Name(), e.PowerMaxW)
				}
				if e.Stacks > phys.MaxNICPorts {
					t.Errorf("%s on %s fits %d stacks > 96 ports", d.Name, core.Name(), e.Stacks)
				}
				if e.Stacks <= 0 {
					t.Errorf("%s on %s fits no stacks", d.Name, core.Name())
				}
			}
		}
	}
}

func TestThroughputGrowsWithCoresForA7(t *testing.T) {
	prev := 0.0
	for _, n := range CoreCounts() {
		e := eval(t, Mercury(cpu.CortexA7(), n))
		if e.TPS64B <= prev {
			t.Fatalf("A7 Mercury TPS should grow with n: %.1fM at n=%d", e.TPS64B/1e6, n)
		}
		prev = e.TPS64B
	}
}

func TestA15ThroughputPlateaus(t *testing.T) {
	// Paper Fig. 7a/8a: A15 TPS levels off at n>=8 as power steals stacks.
	e8 := eval(t, Mercury(cpu.MustCortexA15(1e9), 8))
	e32 := eval(t, Mercury(cpu.MustCortexA15(1e9), 32))
	if e32.TPS64B > e8.TPS64B*1.35 {
		t.Fatalf("A15 TPS should plateau: n=8 %.1fM vs n=32 %.1fM", e8.TPS64B/1e6, e32.TPS64B/1e6)
	}
	if e32.DensityBytes >= e8.DensityBytes {
		t.Fatal("A15 density must fall as cores crowd out stacks")
	}
}

func TestSubMillisecondSLAAtServerLevel(t *testing.T) {
	for _, d := range []Design{Mercury(cpu.CortexA7(), 32), Iridium(cpu.CortexA7(), 32)} {
		e := eval(t, d)
		if e.SubMsFraction64B < 0.9 {
			t.Fatalf("%s: only %.0f%% of requests under 1ms", d.Name, e.SubMsFraction64B*100)
		}
	}
}

func TestDesignConstructors(t *testing.T) {
	m := Mercury(cpu.CortexA7(), 8)
	if m.Name != "Mercury-8" || m.Mem.Kind() != memmodel.KindDRAM {
		t.Fatalf("mercury = %+v", m)
	}
	i := Iridium(cpu.CortexA7(), 16)
	if i.Name != "Iridium-16" || i.Mem.Kind() != memmodel.KindFlash {
		t.Fatalf("iridium = %+v", i)
	}
}

func TestEvaluateRejectsBadDesign(t *testing.T) {
	d := Mercury(cpu.CortexA7(), 64)
	if _, err := Evaluate(d); err == nil {
		t.Fatal("64 cores per stack should be rejected")
	}
}

func TestMetricsGuards(t *testing.T) {
	var e Evaluation
	if e.TPSPerWatt() != 0 || e.TPSPerGB() != 0 {
		t.Fatal("zero evaluation should not divide by zero")
	}
}
