// Package faults is the deterministic fault-plan engine. A plan is a
// reproducible schedule of fault events — connection resets, read/write
// stalls, latency windows, UDP drop windows, node down/up, stack
// fail/degrade/recover — generated from a seed, so every chaos run is
// replayable: the same seed yields a byte-identical schedule.
//
// The package is deliberately pure: it imports only the sim kernel and
// the stdlib, holds no clocks, sockets, or goroutines, and therefore
// satisfies the kv3d-lint determinism contract when the simulation
// closure (clustersim) pulls it in. The live-side machinery that applies
// a plan to real connections lives in the faultnet subpackage.
//
// Time inside a plan is a sim.Duration offset from the plan's start.
// The simulators interpret offsets on their own synthetic time axis;
// the live driver (faultnet.Driver) replays them 1:1 against the wall
// clock.
package faults

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"kv3d/internal/sim"
)

// Kind classifies a fault event.
type Kind uint8

const (
	// ConnReset injects one connection reset on the target's live
	// connections at the event time.
	ConnReset Kind = iota
	// ReadStall freezes reads on the target's connections for For.
	ReadStall
	// WriteStall freezes writes on the target's connections for For.
	WriteStall
	// Latency delays every I/O operation on the target by Arg
	// nanoseconds for a window of For.
	Latency
	// UDPDrop silently drops the target's outbound datagrams for For.
	UDPDrop
	// NodeDown takes a live node offline (listener refuses, open
	// connections reset) until the paired NodeUp.
	NodeDown
	// NodeUp revives a node taken down by NodeDown.
	NodeUp
	// StackFail removes a simulated stack from the routing ring until
	// the paired StackRecover (sim-side twin of NodeDown).
	StackFail
	// StackDegrade reduces a simulated stack's capacity to Arg percent.
	StackDegrade
	// StackRecover restores a failed or degraded stack to full health.
	StackRecover
	// NodeJoin adds the target to the cluster membership at the event
	// time — a scale-out or rejoin event. The consumer (clustersim's
	// ring, a live harness's Membership) decides what joining means.
	NodeJoin
	// NodeLeave removes the target from the cluster membership — a
	// graceful departure, which unlike NodeDown is supposed to come
	// with key-range handoff.
	NodeLeave
	// Partition makes the target unreachable for For: new connections
	// are refused and established ones stall, but nothing is reset —
	// the node is healthy, the network is not. Distinguishable from
	// NodeDown precisely because acknowledged state survives it.
	Partition

	numKinds
)

var kindNames = [numKinds]string{
	ConnReset:    "conn-reset",
	ReadStall:    "read-stall",
	WriteStall:   "write-stall",
	Latency:      "latency",
	UDPDrop:      "udp-drop",
	NodeDown:     "node-down",
	NodeUp:       "node-up",
	StackFail:    "stack-fail",
	StackDegrade: "stack-degrade",
	StackRecover: "stack-recover",
	NodeJoin:     "node-join",
	NodeLeave:    "node-leave",
	Partition:    "partition",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// ParseKind is the inverse of Kind.String.
func ParseKind(s string) (Kind, error) {
	for k, name := range kindNames {
		if s == name {
			return Kind(k), nil
		}
	}
	return 0, fmt.Errorf("faults: unknown kind %q", s)
}

// Event is one scheduled fault.
type Event struct {
	// At is the offset from plan start.
	At sim.Duration
	// Kind selects the fault.
	Kind Kind
	// Target names the afflicted node or stack ("stack-03", a host:port
	// address, ...). Targets must not contain whitespace.
	Target string
	// For is the window length for windowed kinds (stalls, latency,
	// UDP drop); zero for instantaneous state changes.
	For sim.Duration
	// Arg carries a kind-specific parameter: injected delay in
	// nanoseconds for Latency, surviving capacity in percent for
	// StackDegrade. Zero otherwise.
	Arg int64
}

// Plan is a reproducible fault schedule: events sorted by At (ties keep
// generation order).
type Plan struct {
	// Seed is the seed the plan was generated from (zero for
	// hand-built plans).
	Seed uint64
	// Horizon is the schedule's nominal length; events never start
	// after it.
	Horizon sim.Duration
	// Events is the schedule, sorted by At.
	Events []Event
}

// encodeMagic is the first line of the wire form. The encoder is
// hand-written and fully deterministic — a plan's byte encoding is a
// pure function of its contents, which is what the golden tests pin.
const encodeMagic = "kv3d-fault-plan v1"

// Encode renders the plan in its canonical text form: one event per
// line, every field explicit, durations as integer picoseconds (the sim
// kernel's exact base unit, so the round trip is lossless).
//
//	kv3d-fault-plan v1
//	seed 42
//	horizon 800000000000
//	event 12000000000 node-down stack-01 0 0
func (p *Plan) Encode() []byte {
	var b []byte
	b = append(b, encodeMagic...)
	b = append(b, '\n')
	b = append(b, "seed "...)
	b = strconv.AppendUint(b, p.Seed, 10)
	b = append(b, '\n')
	b = append(b, "horizon "...)
	b = strconv.AppendInt(b, int64(p.Horizon), 10)
	b = append(b, '\n')
	for _, ev := range p.Events {
		b = append(b, "event "...)
		b = strconv.AppendInt(b, int64(ev.At), 10)
		b = append(b, ' ')
		b = append(b, ev.Kind.String()...)
		b = append(b, ' ')
		b = append(b, ev.Target...)
		b = append(b, ' ')
		b = strconv.AppendInt(b, int64(ev.For), 10)
		b = append(b, ' ')
		b = strconv.AppendInt(b, ev.Arg, 10)
		b = append(b, '\n')
	}
	return b
}

// String renders the canonical encoding.
func (p *Plan) String() string { return string(p.Encode()) }

// Parse decodes a plan from its canonical encoding.
func Parse(data []byte) (*Plan, error) {
	lines := strings.Split(strings.TrimRight(string(data), "\n"), "\n")
	if len(lines) < 3 {
		return nil, fmt.Errorf("faults: truncated plan (%d lines)", len(lines))
	}
	if lines[0] != encodeMagic {
		return nil, fmt.Errorf("faults: bad magic %q", lines[0])
	}
	p := &Plan{}
	seed, ok := strings.CutPrefix(lines[1], "seed ")
	if !ok {
		return nil, fmt.Errorf("faults: expected seed line, got %q", lines[1])
	}
	var err error
	if p.Seed, err = strconv.ParseUint(seed, 10, 64); err != nil {
		return nil, fmt.Errorf("faults: bad seed: %v", err)
	}
	horizon, ok := strings.CutPrefix(lines[2], "horizon ")
	if !ok {
		return nil, fmt.Errorf("faults: expected horizon line, got %q", lines[2])
	}
	h, err := strconv.ParseInt(horizon, 10, 64)
	if err != nil {
		return nil, fmt.Errorf("faults: bad horizon: %v", err)
	}
	p.Horizon = sim.Duration(h)
	for _, line := range lines[3:] {
		fields := strings.Fields(line)
		if len(fields) != 6 || fields[0] != "event" {
			return nil, fmt.Errorf("faults: bad event line %q", line)
		}
		at, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("faults: bad event time %q", fields[1])
		}
		kind, err := ParseKind(fields[2])
		if err != nil {
			return nil, err
		}
		dur, err := strconv.ParseInt(fields[4], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("faults: bad event window %q", fields[4])
		}
		arg, err := strconv.ParseInt(fields[5], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("faults: bad event arg %q", fields[5])
		}
		p.Events = append(p.Events, Event{
			At: sim.Duration(at), Kind: kind, Target: fields[3],
			For: sim.Duration(dur), Arg: arg,
		})
	}
	return p, nil
}

// sortEvents orders events by time, preserving generation order on
// ties, so a plan's schedule (and therefore its encoding) is unique.
func sortEvents(events []Event) {
	sort.SliceStable(events, func(i, j int) bool { return events[i].At < events[j].At })
}

// Schedule is a cursor over a plan's events for consumers that advance
// along a time axis (the simulators). It does not mutate the plan.
type Schedule struct {
	events []Event
	next   int
}

// Schedule returns a fresh cursor over the plan's events in time order.
func (p *Plan) Schedule() *Schedule {
	events := make([]Event, len(p.Events))
	copy(events, p.Events)
	sortEvents(events)
	return &Schedule{events: events}
}

// Due returns the events with At <= now that have not been returned
// yet, advancing the cursor past them. The returned slice aliases the
// schedule's storage and is valid until the schedule is discarded.
func (s *Schedule) Due(now sim.Duration) []Event {
	start := s.next
	for s.next < len(s.events) && s.events[s.next].At <= now {
		s.next++
	}
	return s.events[start:s.next]
}

// Remaining reports how many events the cursor has not yet delivered.
func (s *Schedule) Remaining() int { return len(s.events) - s.next }
