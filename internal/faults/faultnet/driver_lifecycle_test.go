package faultnet

import (
	"testing"
	"time"

	"kv3d/internal/faults"
	"kv3d/internal/sim"
	"kv3d/internal/testutil"
)

// Driver lifecycle coverage, mirroring the kvserver TCP/UDP leak
// tests: however a replay ends — schedule exhausted, or aborted — the
// driver goroutine must be gone, Stop must stay safe to call, and Wait
// must never wedge.

// TestDriverCompletesThenStopNoLeak: after a schedule runs dry, the
// driver goroutine has exited; Stop on a completed driver returns
// immediately instead of hanging on the already-closed done channel.
func TestDriverCompletesThenStopNoLeak(t *testing.T) {
	testutil.CheckGoroutines(t)
	plan := &faults.Plan{
		Horizon: 10 * sim.Millisecond,
		Events: []faults.Event{
			{At: sim.Millisecond, Kind: faults.NodeDown, Target: "a"},
			{At: 2 * sim.Millisecond, Kind: faults.NodeUp, Target: "a"},
		},
	}
	applied := 0
	d := NewDriver(plan, func(faults.Event) { applied++ })
	d.Start()
	d.Wait()
	d.Stop()
	if applied != 2 {
		t.Fatalf("applied %d events, want 2", applied)
	}
}

// TestDriverStopUnblocksWait: Stop mid-schedule must release a
// concurrent Wait promptly — a Wait that outlives Stop is exactly the
// shutdown hang the chaos harness cannot tolerate.
func TestDriverStopUnblocksWait(t *testing.T) {
	testutil.CheckGoroutines(t)
	plan := &faults.Plan{
		Horizon: 10 * sim.Second,
		Events: []faults.Event{
			{At: 5 * sim.Second, Kind: faults.NodeDown, Target: "a"},
		},
	}
	d := NewDriver(plan, func(faults.Event) {})
	d.Start()
	waited := make(chan struct{})
	go func() {
		d.Wait()
		close(waited)
	}()
	d.Stop()
	select {
	case <-waited:
	case <-time.After(2 * time.Second):
		t.Fatal("Wait did not return after Stop")
	}
}
