package faultnet

import (
	"errors"
	"io"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"kv3d/internal/faults"
	"kv3d/internal/obs"
	"kv3d/internal/sim"
	"kv3d/internal/testutil"
)

// echoServer accepts connections on ln and echoes bytes back until the
// listener closes.
func echoServer(t *testing.T, ln net.Listener) {
	t.Helper()
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				defer c.Close()
				io.Copy(c, c)
			}()
		}
	}()
}

func roundTrip(c net.Conn, msg string) (string, error) {
	if _, err := io.WriteString(c, msg); err != nil {
		return "", err
	}
	buf := make([]byte, len(msg))
	if _, err := io.ReadFull(c, buf); err != nil {
		return "", err
	}
	return string(buf), nil
}

func TestNilInjectorIsPassThrough(t *testing.T) {
	var in *Injector
	c1, c2 := net.Pipe()
	defer c1.Close()
	defer c2.Close()
	if in.Conn("x", c1) != c1 {
		t.Fatal("nil injector wrapped the conn")
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	if in.Listener("x", ln) != ln {
		t.Fatal("nil injector wrapped the listener")
	}
}

func TestInjectedReset(t *testing.T) {
	testutil.CheckGoroutines(t)
	in := New()
	reg := obs.NewRegistry()
	in.SetProbes(reg)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	fln := in.Listener("node", ln)
	defer fln.Close()
	echoServer(t, fln)

	c, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if got, err := roundTrip(c, "ping"); err != nil || got != "ping" {
		t.Fatalf("healthy round trip = %q, %v", got, err)
	}

	// Arm one reset: the server side's next I/O op on this target fails
	// and closes the connection, so the client sees EOF/reset.
	in.Apply(faults.Event{Kind: faults.ConnReset, Target: "node"})
	c.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := roundTrip(c, "ping"); err == nil {
		t.Fatal("round trip survived an injected reset")
	}
	found := false
	for _, p := range reg.Snapshot() {
		if p.Name == "faultnet.reset_conns" && p.Value >= 1 {
			found = true
		}
	}
	if !found {
		t.Fatalf("reset not counted: %+v", reg.Snapshot())
	}
}

func TestDownRefusesAndResetsLiveConns(t *testing.T) {
	testutil.CheckGoroutines(t)
	in := New()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	fln := in.Listener("node", ln)
	defer fln.Close()
	echoServer(t, fln)

	c, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := roundTrip(c, "warm"); err != nil {
		t.Fatal(err)
	}

	in.Apply(faults.Event{Kind: faults.NodeDown, Target: "node"})
	if !in.IsDown("node") {
		t.Fatal("node not down after NodeDown")
	}
	// The established connection was killed.
	c.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := io.ReadFull(c, make([]byte, 1)); err == nil {
		t.Fatal("read on a killed connection succeeded")
	}
	// A fresh dial connects at TCP level but is closed immediately.
	c2, err := net.Dial("tcp", ln.Addr().String())
	if err == nil {
		defer c2.Close()
		c2.SetReadDeadline(time.Now().Add(2 * time.Second))
		if _, err := roundTrip(c2, "ping"); err == nil {
			t.Fatal("round trip succeeded against a down node")
		}
	}

	in.Apply(faults.Event{Kind: faults.NodeUp, Target: "node"})
	c3, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c3.Close()
	if got, err := roundTrip(c3, "back"); err != nil || got != "back" {
		t.Fatalf("revived round trip = %q, %v", got, err)
	}
}

func TestLatencyWindowDelaysOps(t *testing.T) {
	in := New()
	c1, c2 := net.Pipe()
	defer c2.Close()
	fc := in.Conn("node", c1)
	defer fc.Close()
	go io.Copy(io.Discard, c2)

	const delay = 30 * time.Millisecond
	in.Apply(faults.Event{
		Kind: faults.Latency, Target: "node",
		For: 500 * sim.Millisecond, Arg: int64(delay),
	})
	start := time.Now()
	if _, err := fc.Write([]byte("x")); err != nil {
		t.Fatal(err)
	}
	if took := time.Since(start); took < delay {
		t.Fatalf("write took %v, want >= %v of injected latency", took, delay)
	}
}

func TestReadStallWindow(t *testing.T) {
	in := New()
	c1, c2 := net.Pipe()
	defer c2.Close()
	fc := in.Conn("node", c1)
	defer fc.Close()

	const window = 40 * time.Millisecond
	in.Apply(faults.Event{
		Kind: faults.ReadStall, Target: "node",
		For: sim.Duration(window.Nanoseconds()) * sim.Nanosecond,
	})
	go func() {
		time.Sleep(5 * time.Millisecond)
		c2.Write([]byte("y"))
	}()
	start := time.Now()
	if _, err := io.ReadFull(fc, make([]byte, 1)); err != nil {
		t.Fatal(err)
	}
	if took := time.Since(start); took < window {
		t.Fatalf("stalled read returned after %v, want >= %v", took, window)
	}
}

func TestUDPDropWindow(t *testing.T) {
	in := New()
	reg := obs.NewRegistry()
	in.SetProbes(reg)
	pc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer pc.Close()
	sink, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer sink.Close()

	fpc := in.PacketConn("node", pc)
	in.Apply(faults.Event{Kind: faults.UDPDrop, Target: "node", For: sim.Second})
	if n, err := fpc.WriteTo([]byte("dropped"), sink.LocalAddr()); err != nil || n != 7 {
		t.Fatalf("drop-window write = %d, %v (must report success)", n, err)
	}
	sink.SetReadDeadline(time.Now().Add(100 * time.Millisecond))
	if _, _, err := sink.ReadFrom(make([]byte, 64)); err == nil {
		t.Fatal("datagram arrived despite the drop window")
	}
	var drops float64
	for _, p := range reg.Snapshot() {
		if p.Name == "faultnet.dropped_datagrams" {
			drops = p.Value
		}
	}
	if drops != 1 {
		t.Fatalf("drop counter = %v, want 1", drops)
	}
}

func TestDriverRepaysScheduleInOrder(t *testing.T) {
	testutil.CheckGoroutines(t)
	plan := &faults.Plan{
		Horizon: 60 * sim.Millisecond,
		Events: []faults.Event{
			{At: 10 * sim.Millisecond, Kind: faults.NodeDown, Target: "a"},
			{At: 30 * sim.Millisecond, Kind: faults.NodeUp, Target: "a"},
			{At: 50 * sim.Millisecond, Kind: faults.ConnReset, Target: "b"},
		},
	}
	var applied atomic.Int32
	var order []faults.Kind
	d := NewDriver(plan, func(ev faults.Event) {
		order = append(order, ev.Kind)
		applied.Add(1)
	})
	start := time.Now()
	d.Start()
	d.Wait()
	if took := time.Since(start); took < 50*time.Millisecond {
		t.Fatalf("driver finished in %v, before the last event's offset", took)
	}
	if applied.Load() != 3 {
		t.Fatalf("applied %d events, want 3", applied.Load())
	}
	want := []faults.Kind{faults.NodeDown, faults.NodeUp, faults.ConnReset}
	for i, k := range want {
		if order[i] != k {
			t.Fatalf("event order = %v, want %v", order, want)
		}
	}
}

func TestDriverStopAborts(t *testing.T) {
	testutil.CheckGoroutines(t)
	plan := &faults.Plan{
		Horizon: 10 * sim.Second,
		Events: []faults.Event{
			{At: 5 * sim.Second, Kind: faults.NodeDown, Target: "a"},
		},
	}
	var applied atomic.Int32
	d := NewDriver(plan, func(faults.Event) { applied.Add(1) })
	d.Start()
	d.Stop()
	if applied.Load() != 0 {
		t.Fatal("stopped driver applied an event")
	}
	// Stop is idempotent.
	d.Stop()
}

func TestInjectedErrorClassification(t *testing.T) {
	if !errors.Is(ErrReset, ErrInjected) {
		t.Fatal("ErrReset does not unwrap to ErrInjected")
	}
	var nerr net.Error
	if !errors.As(ErrReset, &nerr) {
		t.Fatal("ErrReset is not a net.Error")
	}
	if nerr.Timeout() {
		t.Fatal("injected reset must not classify as a timeout")
	}
}
