// Package faultnet applies a faults.Plan to live network traffic: an
// Injector holds per-target fault state, Conn/Listener/PacketConn
// wrappers consult it on every I/O operation, and a Driver replays a
// plan's schedule against the wall clock. The plan itself (and hence
// the schedule of injections) is deterministic; only the interleaving
// with real traffic is not, which is exactly the split the chaos suite
// needs — a replayable fault schedule against a live server.
//
// This package is live-side only: it must never be imported by a
// simulation package (kv3d-lint's determinism check would rightly
// reject its clocks and sleeps). The pure plan engine lives in the
// parent faults package.
package faultnet

import (
	"errors"
	"net"
	"sync"
	"time"

	"kv3d/internal/faults"
	"kv3d/internal/obs"
	"kv3d/internal/sim"
)

// ErrInjected is returned (wrapped) by all injected failures, so tests
// and retry loops can tell a planned fault from a real one.
var ErrInjected = errors.New("faultnet: injected fault")

// ErrReset is the injected connection-reset error.
var ErrReset = &net.OpError{Op: "read", Net: "tcp", Err: ErrInjected}

// GoDuration converts a plan offset/window into wall-clock time: plans
// replay 1:1 (one simulated millisecond is one real millisecond).
func GoDuration(d sim.Duration) time.Duration {
	return time.Duration(d.Ns())
}

// state is one target's live fault state. Windowed faults store their
// end instant; instantaneous ones are flags/counters.
type state struct {
	down            bool
	partitionUntil  time.Time
	resetPending    int
	latency         time.Duration
	latencyUntil    time.Time
	readStallUntil  time.Time
	writeStallUntil time.Time
	dropUntil       time.Time
	conns           map[*faultConn]struct{}
}

// Injector is the shared live fault state. Wrappers are cheap when no
// fault is armed for their target: one mutex acquisition and a few
// comparisons per I/O call, no allocation.
type Injector struct {
	mu      sync.Mutex
	targets map[string]*state
	probes  *obs.Registry
}

// New returns an empty injector: all targets healthy.
func New() *Injector {
	return &Injector{targets: map[string]*state{}}
}

// SetProbes installs a registry receiving "faultnet.injected.<kind>"
// counters (one per applied plan event) plus effect-site counters:
// "faultnet.reset_conns", "faultnet.refused_conns", and
// "faultnet.dropped_datagrams". Call before traffic starts.
func (in *Injector) SetProbes(r *obs.Registry) {
	in.mu.Lock()
	in.probes = r
	in.mu.Unlock()
}

func (in *Injector) count(name string) {
	in.mu.Lock()
	r := in.probes
	in.mu.Unlock()
	if r != nil {
		r.Counter(name).Add(1)
	}
}

func (in *Injector) target(name string) *state {
	st, ok := in.targets[name]
	if !ok {
		st = &state{conns: map[*faultConn]struct{}{}}
		in.targets[name] = st
	}
	return st
}

// Apply transitions the injector's state for one plan event, effective
// immediately (the Driver owns the timing). NodeDown also resets every
// live wrapped connection of the target, the way a crashed process
// would.
func (in *Injector) Apply(ev faults.Event) {
	now := time.Now()
	window := GoDuration(ev.For)
	in.mu.Lock()
	st := in.target(ev.Target)
	var toClose []*faultConn
	switch ev.Kind {
	case faults.NodeDown, faults.StackFail:
		st.down = true
		for c := range st.conns {
			toClose = append(toClose, c)
		}
	case faults.NodeUp, faults.StackRecover:
		st.down = false
	case faults.ConnReset:
		st.resetPending++
	case faults.Latency:
		st.latency = time.Duration(ev.Arg)
		st.latencyUntil = now.Add(window)
	case faults.ReadStall:
		st.readStallUntil = now.Add(window)
	case faults.WriteStall:
		st.writeStallUntil = now.Add(window)
	case faults.UDPDrop:
		st.dropUntil = now.Add(window)
	case faults.Partition:
		// Unreachable, not dead: new connections are refused and
		// established ones stall until the window closes, but nothing is
		// reset — acknowledged state on the node survives.
		end := now.Add(window)
		st.partitionUntil = end
		if end.After(st.readStallUntil) {
			st.readStallUntil = end
		}
		if end.After(st.writeStallUntil) {
			st.writeStallUntil = end
		}
	case faults.NodeJoin, faults.NodeLeave:
		// Membership transitions are cluster-level, not socket-level:
		// the harness driving the plan applies them to its Membership.
		// The injector only counts them so chaos runs can assert the
		// schedule was delivered.
	}
	in.mu.Unlock()
	in.count("faultnet.injected." + ev.Kind.String())
	for _, c := range toClose {
		c.Close() //nolint:kv3d -- injected kill: the close error of a connection being torn down on purpose carries no signal
	}
}

// SetDown flips a target's down state directly (for tests and harnesses
// that do not run a full plan).
func (in *Injector) SetDown(target string, down bool) {
	in.Apply(faults.Event{Kind: faults.NodeDown, Target: target})
	if !down {
		in.Apply(faults.Event{Kind: faults.NodeUp, Target: target})
	}
}

// IsDown reports whether the target is currently down.
func (in *Injector) IsDown(target string) bool {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.target(target).down
}

// unreachable reports whether the target should refuse new connections:
// down, or inside a partition window.
func (in *Injector) unreachable(target string) bool {
	in.mu.Lock()
	defer in.mu.Unlock()
	st := in.target(target)
	return st.down || st.partitionUntil.After(time.Now())
}

// decide computes what to do to one I/O op: how long to delay, and
// whether to reset instead of proceeding.
func (in *Injector) decide(target string, read bool) (delay time.Duration, reset bool) {
	now := time.Now()
	in.mu.Lock()
	defer in.mu.Unlock()
	st := in.target(target)
	if st.down {
		return 0, true
	}
	if st.resetPending > 0 {
		st.resetPending--
		return 0, true
	}
	var until time.Time
	if read {
		until = st.readStallUntil
	} else {
		until = st.writeStallUntil
	}
	if until.After(now) {
		delay = until.Sub(now)
	}
	if st.latencyUntil.After(now) && st.latency > delay {
		delay = st.latency
	}
	return delay, false
}

// dropping reports whether the target's UDP drop window is active.
func (in *Injector) dropping(target string) bool {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.target(target).dropUntil.After(time.Now())
}

// Conn wraps a live connection so the injector can reset, stall, and
// delay it. A nil Injector returns c unchanged, so installing fault
// hooks costs nothing when no plan is armed.
func (in *Injector) Conn(target string, c net.Conn) net.Conn {
	if in == nil {
		return c
	}
	fc := &faultConn{Conn: c, inj: in, target: target}
	in.mu.Lock()
	in.target(target).conns[fc] = struct{}{}
	in.mu.Unlock()
	return fc
}

type faultConn struct {
	net.Conn
	inj    *Injector
	target string
	closed sync.Once
}

// apply runs the injector's decision before an I/O op: sleep for
// injected latency/stalls, or reset the connection.
func (c *faultConn) apply(read bool) error {
	delay, reset := c.inj.decide(c.target, read)
	if reset {
		c.Close() //nolint:kv3d -- the reset is the point; the peer observes the close, not its error
		c.inj.count("faultnet.reset_conns")
		return ErrReset
	}
	if delay > 0 {
		time.Sleep(delay)
	}
	return nil
}

func (c *faultConn) Read(p []byte) (int, error) {
	if err := c.apply(true); err != nil {
		return 0, err
	}
	return c.Conn.Read(p)
}

func (c *faultConn) Write(p []byte) (int, error) {
	if err := c.apply(false); err != nil {
		return 0, err
	}
	return c.Conn.Write(p)
}

func (c *faultConn) Close() error {
	var err error
	c.closed.Do(func() {
		c.inj.mu.Lock()
		delete(c.inj.target(c.target).conns, c)
		c.inj.mu.Unlock()
		err = c.Conn.Close()
	})
	return err
}

// Listener wraps a live listener: while the target is down, accepted
// connections are closed immediately (the peer sees a refused/reset
// connection, as with a dead process whose port is still bound), and
// admitted connections are wrapped with Conn. A nil Injector returns
// ln unchanged.
func (in *Injector) Listener(target string, ln net.Listener) net.Listener {
	if in == nil {
		return ln
	}
	return &faultListener{Listener: ln, inj: in, target: target}
}

type faultListener struct {
	net.Listener
	inj    *Injector
	target string
}

func (l *faultListener) Accept() (net.Conn, error) {
	for {
		c, err := l.Listener.Accept()
		if err != nil {
			return nil, err
		}
		if l.inj.unreachable(l.target) {
			c.Close() //nolint:kv3d -- refusing a connection to a down or partitioned node; its close error is noise
			l.inj.count("faultnet.refused_conns")
			continue
		}
		return l.inj.Conn(l.target, c), nil
	}
}

// PacketConn wraps a datagram socket: while the target's UDP drop
// window is active, outbound datagrams are silently discarded (reported
// as sent, exactly like a congested network). A nil Injector returns
// pc unchanged.
func (in *Injector) PacketConn(target string, pc net.PacketConn) net.PacketConn {
	if in == nil {
		return pc
	}
	return &faultPacketConn{PacketConn: pc, inj: in, target: target}
}

type faultPacketConn struct {
	net.PacketConn
	inj    *Injector
	target string
}

func (p *faultPacketConn) WriteTo(b []byte, addr net.Addr) (int, error) {
	if p.inj.dropping(p.target) {
		p.inj.count("faultnet.dropped_datagrams")
		return len(b), nil
	}
	return p.PacketConn.WriteTo(b, addr)
}

// Driver replays a plan's schedule in real time, calling apply for each
// event at its offset from Start. Use Injector.Apply as the callback,
// or a custom one (the chaos harness kills and revives servers).
type Driver struct {
	plan  *faults.Plan
	apply func(faults.Event)
	stop  chan struct{}
	done  chan struct{}
}

// NewDriver builds a driver; Start launches it.
func NewDriver(p *faults.Plan, apply func(faults.Event)) *Driver {
	return &Driver{
		plan:  p,
		apply: apply,
		stop:  make(chan struct{}),
		done:  make(chan struct{}),
	}
}

// Start begins replaying the plan against the wall clock.
func (d *Driver) Start() {
	// Due(MaxDuration) drains the whole sorted schedule up front; the
	// driver then owns the pacing.
	events := d.plan.Schedule().Due(sim.Duration(1<<63 - 1))
	start := time.Now()
	go func() {
		defer close(d.done)
		for _, ev := range events {
			wait := GoDuration(ev.At) - time.Since(start)
			if wait > 0 {
				select {
				case <-time.After(wait):
				case <-d.stop:
					return
				}
			}
			select {
			case <-d.stop:
				return
			default:
			}
			d.apply(ev)
		}
	}()
}

// Wait blocks until every event has been applied (or Stop was called).
func (d *Driver) Wait() { <-d.done }

// Stop aborts the replay and waits for the driver goroutine to exit.
func (d *Driver) Stop() {
	select {
	case <-d.stop:
	default:
		close(d.stop)
	}
	<-d.done
}
