package faults

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"kv3d/internal/sim"
)

var updateGolden = flag.Bool("update", false, "rewrite the golden fault plan")

func goldenGenConfig() GenConfig {
	return GenConfig{
		Seed:      42,
		Targets:   []string{"stack-00", "stack-01", "stack-02"},
		Horizon:   800 * sim.Millisecond,
		MeanGap:   60 * sim.Millisecond,
		MinOutage: 50 * sim.Millisecond,
		MaxOutage: 150 * sim.Millisecond,
		Kinds:     []Kind{NodeDown},
	}
}

// TestGoldenSchedule pins the byte encoding of a fixed-seed plan: same
// seed, byte-identical schedule, across runs and across machines.
// Regenerate deliberately with
//
//	go test ./internal/faults -run TestGoldenSchedule -update
func TestGoldenSchedule(t *testing.T) {
	p1, err := Generate(goldenGenConfig())
	if err != nil {
		t.Fatal(err)
	}
	p2, err := Generate(goldenGenConfig())
	if err != nil {
		t.Fatal(err)
	}
	got := p1.Encode()
	if !bytes.Equal(got, p2.Encode()) {
		t.Fatal("same seed produced different plan bytes across generations")
	}
	path := filepath.Join("testdata", "plan_seed42.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to create): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("plan drifted from golden (len %d vs %d); run with -update if intended:\n%s",
			len(got), len(want), got)
	}
}

func TestSeedsDiverge(t *testing.T) {
	cfg := goldenGenConfig()
	p1, _ := Generate(cfg)
	cfg.Seed = 43
	p2, _ := Generate(cfg)
	if bytes.Equal(p1.Encode(), p2.Encode()) {
		t.Fatal("different seeds produced identical plans")
	}
}

func TestEncodeParseRoundTrip(t *testing.T) {
	cfg := goldenGenConfig()
	cfg.Kinds = []Kind{NodeDown, ConnReset, Latency, ReadStall, WriteStall, UDPDrop, StackDegrade}
	p, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Events) == 0 {
		t.Fatal("generated an empty plan")
	}
	back, err := Parse(p.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(p.Encode(), back.Encode()) {
		t.Fatal("encode/parse round trip lost information")
	}
}

func TestParseRejectsGarbage(t *testing.T) {
	for _, bad := range []string{
		"",
		"not-a-plan\nseed 1\nhorizon 2\n",
		"kv3d-fault-plan v1\nseed x\nhorizon 2\n",
		"kv3d-fault-plan v1\nseed 1\nhorizon 2\nevent nope\n",
		"kv3d-fault-plan v1\nseed 1\nhorizon 2\nevent 1 frobnicate a 0 0\n",
	} {
		if _, err := Parse([]byte(bad)); err == nil {
			t.Errorf("Parse accepted %q", bad)
		}
	}
}

// TestGenerateInvariants checks the structural promises: events sorted,
// outages paired with revivals, never more than MaxConcurrentDown
// targets down, everything back up by the horizon.
func TestGenerateInvariants(t *testing.T) {
	for seed := uint64(1); seed <= 20; seed++ {
		cfg := goldenGenConfig()
		cfg.Seed = seed
		p, err := Generate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		down := map[string]bool{}
		var last sim.Duration
		for _, ev := range p.Events {
			if ev.At < last {
				t.Fatalf("seed %d: events out of order", seed)
			}
			last = ev.At
			if ev.At > cfg.Horizon {
				t.Fatalf("seed %d: event after horizon", seed)
			}
			switch ev.Kind {
			case NodeDown:
				if down[ev.Target] {
					t.Fatalf("seed %d: %s taken down twice", seed, ev.Target)
				}
				down[ev.Target] = true
				n := 0
				for _, d := range down {
					if d {
						n++
					}
				}
				if n > 1 {
					t.Fatalf("seed %d: %d targets down at once (cap 1)", seed, n)
				}
			case NodeUp:
				if !down[ev.Target] {
					t.Fatalf("seed %d: %s revived while up", seed, ev.Target)
				}
				down[ev.Target] = false
			}
		}
		for target, d := range down {
			if d {
				t.Fatalf("seed %d: %s still down at end of plan", seed, target)
			}
		}
	}
}

func TestGenerateValidation(t *testing.T) {
	if _, err := Generate(GenConfig{Horizon: sim.Second}); err == nil {
		t.Fatal("Generate accepted zero targets")
	}
	if _, err := Generate(GenConfig{Targets: []string{"a"}}); err == nil {
		t.Fatal("Generate accepted zero horizon")
	}
}

func TestScheduleCursor(t *testing.T) {
	p := &Plan{Events: []Event{
		{At: 30 * sim.Millisecond, Kind: NodeUp, Target: "b"},
		{At: 10 * sim.Millisecond, Kind: NodeDown, Target: "a"},
		{At: 20 * sim.Millisecond, Kind: NodeDown, Target: "b"},
	}}
	s := p.Schedule()
	if got := s.Due(5 * sim.Millisecond); len(got) != 0 {
		t.Fatalf("early Due returned %d events", len(got))
	}
	got := s.Due(20 * sim.Millisecond)
	if len(got) != 2 || got[0].Target != "a" || got[1].Target != "b" {
		t.Fatalf("Due(20ms) = %+v", got)
	}
	if s.Remaining() != 1 {
		t.Fatalf("Remaining = %d", s.Remaining())
	}
	if got := s.Due(sim.Second); len(got) != 1 || got[0].Kind != NodeUp {
		t.Fatalf("final Due = %+v", got)
	}
	// The cursor never rewinds: a second pass is empty.
	if got := s.Due(sim.Second); len(got) != 0 {
		t.Fatalf("cursor rewound: %+v", got)
	}
	// The plan itself is untouched (Schedule sorts a copy).
	if p.Events[0].Target != "b" {
		t.Fatal("Schedule mutated the plan's event order")
	}
}

func TestKindStringParseInverse(t *testing.T) {
	for k := Kind(0); k < numKinds; k++ {
		back, err := ParseKind(k.String())
		if err != nil || back != k {
			t.Fatalf("ParseKind(%q) = %v, %v", k.String(), back, err)
		}
	}
	if _, err := ParseKind("bogus"); err == nil {
		t.Fatal("ParseKind accepted bogus kind")
	}
}
