package faults

import (
	"fmt"

	"kv3d/internal/sim"
)

// GenConfig shapes plan generation. Every knob has a sensible default
// so tests can set only Seed, Targets, and Horizon.
type GenConfig struct {
	// Seed drives every random choice; the same config yields a
	// byte-identical plan.
	Seed uint64
	// Targets are the nodes/stacks faults may strike.
	Targets []string
	// Horizon is the schedule length; no event starts after it.
	Horizon sim.Duration
	// MeanGap is the mean spacing between injected faults
	// (exponential; default Horizon/12).
	MeanGap sim.Duration
	// Kinds to draw from, uniformly (default: NodeDown only — the
	// kill/revive schedule of the headline chaos suite).
	Kinds []Kind
	// MinOutage/MaxOutage bound the length of outage and fault windows
	// (defaults Horizon/20 and Horizon/8).
	MinOutage, MaxOutage sim.Duration
	// MaxConcurrentDown caps how many targets may be down at once
	// (default 1 — the paper's "lose one stack, keep the server"
	// regime). Draws that would exceed it are skipped, keeping the
	// draw sequence deterministic.
	MaxConcurrentDown int
	// LatencyNanos is the injected per-op delay for Latency events
	// (default 5e6 = 5ms).
	LatencyNanos int64
	// DegradePercent is the surviving capacity for StackDegrade events
	// (default 50).
	DegradePercent int64
}

func (cfg GenConfig) withDefaults() GenConfig {
	if cfg.MeanGap <= 0 {
		cfg.MeanGap = cfg.Horizon / 12
	}
	if len(cfg.Kinds) == 0 {
		cfg.Kinds = []Kind{NodeDown}
	}
	if cfg.MinOutage <= 0 {
		cfg.MinOutage = cfg.Horizon / 20
	}
	if cfg.MaxOutage <= 0 {
		cfg.MaxOutage = cfg.Horizon / 8
	}
	if cfg.MaxOutage < cfg.MinOutage {
		cfg.MaxOutage = cfg.MinOutage
	}
	if cfg.MaxConcurrentDown <= 0 {
		cfg.MaxConcurrentDown = 1
	}
	if cfg.LatencyNanos <= 0 {
		cfg.LatencyNanos = 5_000_000
	}
	if cfg.DegradePercent <= 0 || cfg.DegradePercent >= 100 {
		cfg.DegradePercent = 50
	}
	return cfg
}

// Generate builds a deterministic fault plan from the seed. Outage
// kinds (NodeDown, StackFail) are emitted as paired down/up events, the
// revival clamped to the horizon so every plan ends with all targets
// back up; windowed kinds carry their window in For.
func Generate(cfg GenConfig) (*Plan, error) {
	if len(cfg.Targets) == 0 {
		return nil, fmt.Errorf("faults: Generate needs at least one target")
	}
	if cfg.Horizon <= 0 {
		return nil, fmt.Errorf("faults: Generate needs a positive horizon")
	}
	cfg = cfg.withDefaults()

	rng := sim.NewRand(cfg.Seed)
	plan := &Plan{Seed: cfg.Seed, Horizon: cfg.Horizon}
	// upAt[i] is when target i comes back up; zero means it is up now.
	upAt := make([]sim.Duration, len(cfg.Targets))

	var t sim.Duration
	for {
		t += rng.Exp(cfg.MeanGap)
		if t >= cfg.Horizon {
			break
		}
		kind := cfg.Kinds[rng.Intn(len(cfg.Kinds))]
		ti := rng.Intn(len(cfg.Targets))
		target := cfg.Targets[ti]
		window := cfg.MinOutage +
			sim.Duration(rng.Float64()*float64(cfg.MaxOutage-cfg.MinOutage))
		end := t + window
		if end > cfg.Horizon {
			end = cfg.Horizon
		}
		if end <= t {
			continue
		}
		switch kind {
		case NodeDown, StackFail, NodeLeave:
			down := 0
			for _, u := range upAt {
				if u > t {
					down++
				}
			}
			// Skip draws that would strike an already-down target or
			// exceed the concurrency cap; the rng sequence is unchanged,
			// so generation stays deterministic.
			if upAt[ti] > t || down >= cfg.MaxConcurrentDown {
				continue
			}
			up := NodeUp
			switch kind {
			case StackFail:
				up = StackRecover
			case NodeLeave:
				// Membership churn: a graceful leave paired with a
				// rejoin, bounded by the same concurrency cap as
				// outages so a plan never empties the cluster.
				up = NodeJoin
			}
			plan.Events = append(plan.Events,
				Event{At: t, Kind: kind, Target: target},
				Event{At: end, Kind: up, Target: target})
			upAt[ti] = end
		case StackDegrade:
			plan.Events = append(plan.Events,
				Event{At: t, Kind: StackDegrade, Target: target, Arg: cfg.DegradePercent},
				Event{At: end, Kind: StackRecover, Target: target})
		case Latency:
			plan.Events = append(plan.Events,
				Event{At: t, Kind: Latency, Target: target, For: end - t, Arg: cfg.LatencyNanos})
		case ReadStall, WriteStall, UDPDrop, Partition:
			plan.Events = append(plan.Events,
				Event{At: t, Kind: kind, Target: target, For: end - t})
		case ConnReset:
			plan.Events = append(plan.Events,
				Event{At: t, Kind: ConnReset, Target: target})
		case NodeJoin:
			// A bare join draw is a scale-out event: instantaneous, no
			// pairing (consumers treat joining a member as a no-op).
			plan.Events = append(plan.Events,
				Event{At: t, Kind: NodeJoin, Target: target})
		}
	}
	sortEvents(plan.Events)
	return plan, nil
}
