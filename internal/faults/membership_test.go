package faults

import (
	"bytes"
	"testing"

	"kv3d/internal/sim"
)

// TestMembershipKindsRoundTrip pins the canonical encoding of the
// membership kinds (node-join, node-leave, partition): a hand-built
// plan survives Encode -> Parse -> Encode byte-identically, and the
// rendered lines use the documented names. The kinds were appended
// after StackRecover precisely so existing golden encodings stay
// untouched; this test guards the new tail of the enum.
func TestMembershipKindsRoundTrip(t *testing.T) {
	p := &Plan{Horizon: sim.Second, Events: []Event{
		{At: 10 * sim.Millisecond, Kind: NodeJoin, Target: "stack-09"},
		{At: 20 * sim.Millisecond, Kind: NodeLeave, Target: "stack-02"},
		{At: 30 * sim.Millisecond, Kind: Partition, Target: "stack-05", For: 40 * sim.Millisecond},
	}}
	enc := p.Encode()
	for _, want := range []string{"node-join stack-09", "node-leave stack-02", "partition stack-05"} {
		if !bytes.Contains(enc, []byte(want)) {
			t.Fatalf("encoding missing %q:\n%s", want, enc)
		}
	}
	back, err := Parse(enc)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(enc, back.Encode()) {
		t.Fatalf("round trip lost information:\n%s\nvs\n%s", enc, back.Encode())
	}
	if back.Events[2].For != 40*sim.Millisecond {
		t.Fatalf("partition window lost: %v", back.Events[2].For)
	}
}

// TestGenerateMembershipChurn checks the generator's membership
// semantics: every NodeLeave is paired with a later NodeJoin of the
// same target (graceful leave + rejoin), partitions carry a window,
// and leaves respect the MaxConcurrentDown cap so a churny plan never
// empties the cluster.
func TestGenerateMembershipChurn(t *testing.T) {
	cfg := GenConfig{
		Seed:              7,
		Targets:           []string{"a", "b", "c", "d"},
		Horizon:           800 * sim.Millisecond,
		Kinds:             []Kind{NodeLeave, NodeJoin, Partition},
		MaxConcurrentDown: 2,
	}
	p, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Events) == 0 {
		t.Fatal("generated an empty plan")
	}
	// Walk the schedule counting members out of the cluster.
	out := map[string]sim.Duration{} // target -> rejoin time
	for _, ev := range p.Events {
		switch ev.Kind {
		case NodeLeave:
			for tgt, until := range out {
				if until <= ev.At {
					delete(out, tgt)
				}
			}
			if _, gone := out[ev.Target]; gone {
				t.Fatalf("NodeLeave at %v strikes already-left target %s", ev.At, ev.Target)
			}
			// Find the paired rejoin.
			rejoin := sim.Duration(-1)
			for _, later := range p.Events {
				if later.Kind == NodeJoin && later.Target == ev.Target && later.At >= ev.At {
					rejoin = later.At
					break
				}
			}
			if rejoin < 0 {
				t.Fatalf("NodeLeave of %s at %v has no paired NodeJoin", ev.Target, ev.At)
			}
			out[ev.Target] = rejoin
			gone := 0
			for _, until := range out {
				if until > ev.At {
					gone++
				}
			}
			if gone > cfg.MaxConcurrentDown {
				t.Fatalf("%d members out at %v, cap %d", gone, ev.At, cfg.MaxConcurrentDown)
			}
		case Partition:
			if ev.For <= 0 {
				t.Fatalf("partition at %v has no window", ev.At)
			}
			if ev.At+ev.For > p.Horizon {
				t.Fatalf("partition window [%v, %v] exceeds horizon %v", ev.At, ev.At+ev.For, p.Horizon)
			}
		}
	}
	// Determinism: same config, byte-identical plan.
	again, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(p.Encode(), again.Encode()) {
		t.Fatal("membership plan generation is not deterministic")
	}
}
