package sim

import "math"

// Rand is a small deterministic PRNG (splitmix64 seeded xorshift star)
// kept inside the sim package so model code never reaches for the global
// math/rand state; every experiment owns its streams and is replayable.
type Rand struct {
	state uint64
}

// NewRand returns a deterministic generator for the given seed. Seed 0
// is remapped so the generator never sticks at zero.
func NewRand(seed uint64) *Rand {
	r := &Rand{state: seed}
	if r.state == 0 {
		r.state = 0x9e3779b97f4a7c15
	}
	// Warm the state through splitmix so close seeds diverge.
	r.state = splitmix64(&r.state)
	if r.state == 0 {
		r.state = 1
	}
	return r
}

func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Uint64 returns the next 64 random bits (xorshift64*).
func (r *Rand) Uint64() uint64 {
	x := r.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.state = x
	return x * 0x2545f4914f6cdd1d
}

// Float64 returns a uniform value in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Exp returns an exponentially distributed duration with the given mean,
// used for open-loop arrival processes.
func (r *Rand) Exp(mean Duration) Duration {
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return FromSeconds(-mean.Seconds() * math.Log(u))
}
