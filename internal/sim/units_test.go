package sim

import "testing"

func TestPsNsRoundTrip(t *testing.T) {
	cases := []struct {
		ps Ps
		ns Ns
	}{
		{0, 0},
		{1, 0},    // sub-ns rounds down
		{499, 0},  // just under half
		{500, 1},  // half rounds away from zero
		{1000, 1}, // exact
		{1499, 1},
		{1500, 2},
		{-500, -1}, // symmetric for negative spans
		{-499, 0},
		{1_000_000, 1000},
	}
	for _, c := range cases {
		if got := PsToNs(c.ps); got != c.ns {
			t.Errorf("PsToNs(%d) = %d, want %d", c.ps, got, c.ns)
		}
	}
	for _, n := range []Ns{0, 1, -3, 12345} {
		if got := NsToPs(n); got != Ps(n)*1000 {
			t.Errorf("NsToPs(%d) = %d", n, got)
		}
		if back := PsToNs(NsToPs(n)); back != n {
			t.Errorf("PsToNs(NsToPs(%d)) = %d", n, back)
		}
	}
}

// TestCyclesToPsMatchesLegacyArithmetic pins the conversion to the
// exact arithmetic the model packages used before the typed seam
// (Duration(float64(period) * cycles)): calibrated outputs, including
// the serversim golden traces, must not move.
func TestCyclesToPsMatchesLegacyArithmetic(t *testing.T) {
	periods := []Duration{400, 667, 1000} // 2.5GHz, 1.5GHz, 1GHz
	cycles := []float64{0, 1, 2.5, 12, 21.7, 1000}
	for _, p := range periods {
		for _, c := range cycles {
			legacy := Duration(float64(p) * c)
			if got := CyclesToPs(c, p).Duration(); got != legacy {
				t.Errorf("CyclesToPs(%v, %v) = %v, legacy arithmetic gives %v", c, p, got, legacy)
			}
		}
	}
}

func TestDurationTypedAccessors(t *testing.T) {
	d := 1500 * Nanosecond
	if d.Ps() != 1_500_000 {
		t.Errorf("Ps() = %d", d.Ps())
	}
	if d.Ns() != 1500 {
		t.Errorf("Ns() = %d", d.Ns())
	}
	if Time(42).Ps() != 42 {
		t.Errorf("Time.Ps() = %d", Time(42).Ps())
	}
	if (Ps(7)).Duration() != 7 {
		t.Errorf("Ps.Duration() = %v", Ps(7).Duration())
	}
}
