package sim

// Typed time-unit counts.
//
// Time and Duration already carry the kernel's base unit (integer
// picoseconds), so arithmetic inside the kernel is safe by construction.
// The places that historically mixed units are the raw-integer seams at
// the kernel's edges: histograms record int64 picoseconds, the live
// server's injected clocks and protocol observers hand around int64
// nanoseconds, and the CPU models convert cycle counts into time. An
// untyped int64 crossing one of those seams compiles no matter which
// unit it holds.
//
// Ps and Ns are defined integer types for exactly those seams. Mixing
// them — or assigning one where the other is expected — is now a
// compile error, and the conversions below are the only sanctioned
// crossings. The kv3d-lint `units` check (type-resolved since v2)
// guards the residual cases the type system cannot: untyped constants
// and values laundered through explicit int64/float64 conversions.

// Ps is a picosecond count: the kernel's base unit as a defined type
// for raw-integer seams (histogram samples, trace timestamps).
type Ps int64

// Ns is a nanosecond count: the live server's clock unit (injected
// NowNanos clocks, protocol observers) as a defined type.
type Ns int64

// PsToNs converts picoseconds to nanoseconds, rounding to nearest
// (half away from zero). Rounding — not truncation — keeps sub-ns
// picosecond values from silently vanishing at the seam.
func PsToNs(p Ps) Ns {
	if p >= 0 {
		return Ns((p + 500) / 1000)
	}
	return Ns((p - 500) / 1000)
}

// NsToPs converts nanoseconds to picoseconds. Exact: the kernel unit
// is finer.
func NsToPs(n Ns) Ps { return Ps(n) * 1000 }

// CyclesToPs converts a (possibly fractional) core-cycle count into
// picoseconds given the core's cycle period, truncating toward zero
// exactly like the untyped float64 arithmetic it replaces — callers
// that calibrated against the old `Duration(float64(period) * cycles)`
// idiom get bit-identical results.
func CyclesToPs(cycles float64, cyclePeriod Duration) Ps {
	return Ps(float64(cyclePeriod) * cycles)
}

// Duration converts a typed picosecond count back into a kernel
// Duration (numerically the identity; the types differ so that raw
// int64 seams stay visible).
func (p Ps) Duration() Duration { return Duration(p) }

// Ps returns the duration as a typed picosecond count.
func (d Duration) Ps() Ps { return Ps(d) }

// Ns returns the duration as a typed nanosecond count, rounded to
// nearest like PsToNs.
func (d Duration) Ns() Ns { return PsToNs(Ps(d)) }

// Ps returns the timestamp as a typed picosecond count (picoseconds
// since simulation start).
func (t Time) Ps() Ps { return Ps(t) }
