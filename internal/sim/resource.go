package sim

// Resource models a service station with a fixed number of identical
// servers and an unbounded FIFO queue. Jobs request service for a given
// duration; when a server becomes free the job's completion callback is
// scheduled. This is the building block for memory ports, flash
// controllers, NIC MACs and wire links.
type Resource struct {
	sim     *Simulator
	name    string
	servers int
	busy    int
	waiting []*job

	// Stats.
	served       uint64
	busyTime     Duration // integrated over servers
	queueDelay   Duration
	maxQueueLen  int
	lastStatTime Time

	hooks *ResourceHooks
}

// ResourceHooks observe a resource's queue transitions; any field may be
// nil. Hooks fire inside the event that causes the transition — in
// deterministic sim order — and must only observe (record spans, bump
// probes), never schedule work or re-enter the resource. Installing
// hooks costs the disabled path one nil-check per transition.
type ResourceHooks struct {
	// Enqueued fires when a job arrives and no server is free;
	// queueLen is the queue length including the new job.
	Enqueued func(now Time, queueLen int)
	// Started fires when a job begins service after waiting.
	Started func(now Time, wait Duration)
	// Completed fires when a job finishes service.
	Completed func(now Time, wait, service Duration)
}

// SetHooks installs (or, with nil, removes) observation hooks.
func (r *Resource) SetHooks(h *ResourceHooks) { r.hooks = h }

// ServiceInfo reports the measured timeline of one completed job.
type ServiceInfo struct {
	Enqueued  Time // Acquire call time
	Started   Time // service start (== Enqueued when no wait)
	Completed Time // service end
}

// Wait is the time the job spent queued for a free server.
func (i ServiceInfo) Wait() Duration { return i.Started.Sub(i.Enqueued) }

// Service is the time the job spent in service.
func (i ServiceInfo) Service() Duration { return i.Completed.Sub(i.Started) }

type job struct {
	enqueued Time
	service  Duration
	done     func()
	doneInfo func(ServiceInfo)
}

// NewResource creates a resource with the given parallelism.
func NewResource(s *Simulator, name string, servers int) *Resource {
	if servers < 1 {
		panic("sim: resource needs at least one server")
	}
	return &Resource{sim: s, name: name, servers: servers}
}

// Name returns the resource's diagnostic name.
func (r *Resource) Name() string { return r.name }

// Acquire enqueues a job needing the given service time; done runs when
// service completes. Service order is strictly FIFO.
func (r *Resource) Acquire(service Duration, done func()) {
	r.acquire(service, done, nil)
}

// AcquireInfo is Acquire with a timed completion callback: done receives
// the job's measured enqueue/start/completion times, which is how the
// server simulation attributes latency to queueing versus service
// without re-deriving the resource's FIFO discipline.
func (r *Resource) AcquireInfo(service Duration, done func(ServiceInfo)) {
	r.acquire(service, nil, done)
}

func (r *Resource) acquire(service Duration, done func(), doneInfo func(ServiceInfo)) {
	if service < 0 {
		service = 0
	}
	j := &job{enqueued: r.sim.Now(), service: service, done: done, doneInfo: doneInfo}
	if r.busy < r.servers {
		r.start(j)
		return
	}
	r.waiting = append(r.waiting, j)
	if len(r.waiting) > r.maxQueueLen {
		r.maxQueueLen = len(r.waiting)
	}
	if r.hooks != nil && r.hooks.Enqueued != nil {
		r.hooks.Enqueued(r.sim.Now(), len(r.waiting))
	}
}

func (r *Resource) start(j *job) {
	started := r.sim.Now()
	wait := started.Sub(j.enqueued)
	r.busy++
	r.queueDelay += wait
	r.busyTime += j.service
	if r.hooks != nil && r.hooks.Started != nil && wait > 0 {
		r.hooks.Started(started, wait)
	}
	r.sim.After(j.service, func() {
		r.busy--
		r.served++
		if len(r.waiting) > 0 {
			next := r.waiting[0]
			copy(r.waiting, r.waiting[1:])
			r.waiting[len(r.waiting)-1] = nil
			r.waiting = r.waiting[:len(r.waiting)-1]
			r.start(next)
		}
		if r.hooks != nil && r.hooks.Completed != nil {
			r.hooks.Completed(r.sim.Now(), wait, j.service)
		}
		if j.done != nil {
			j.done()
		}
		if j.doneInfo != nil {
			j.doneInfo(ServiceInfo{Enqueued: j.enqueued, Started: started, Completed: r.sim.Now()})
		}
	})
}

// Served reports how many jobs completed service.
func (r *Resource) Served() uint64 { return r.served }

// Busy reports how many servers are currently serving.
func (r *Resource) Busy() int { return r.busy }

// QueueLen reports the current number of waiting jobs.
func (r *Resource) QueueLen() int { return len(r.waiting) }

// MaxQueueLen reports the high-water mark of the waiting queue.
func (r *Resource) MaxQueueLen() int { return r.maxQueueLen }

// Utilization returns integrated busy time divided by (servers × span).
func (r *Resource) Utilization(span Duration) float64 {
	if span <= 0 {
		return 0
	}
	return r.busyTime.Seconds() / (float64(r.servers) * span.Seconds())
}

// TotalQueueDelay returns the summed time jobs spent waiting for a server.
func (r *Resource) TotalQueueDelay() Duration { return r.queueDelay }
