package sim

// Resource models a service station with a fixed number of identical
// servers and an unbounded FIFO queue. Jobs request service for a given
// duration; when a server becomes free the job's completion callback is
// scheduled. This is the building block for memory ports, flash
// controllers, NIC MACs and wire links.
type Resource struct {
	sim     *Simulator
	name    string
	servers int
	busy    int
	waiting []*job

	// Stats.
	served       uint64
	busyTime     Duration // integrated over servers
	queueDelay   Duration
	maxQueueLen  int
	lastStatTime Time
}

type job struct {
	enqueued Time
	service  Duration
	done     func()
}

// NewResource creates a resource with the given parallelism.
func NewResource(s *Simulator, name string, servers int) *Resource {
	if servers < 1 {
		panic("sim: resource needs at least one server")
	}
	return &Resource{sim: s, name: name, servers: servers}
}

// Name returns the resource's diagnostic name.
func (r *Resource) Name() string { return r.name }

// Acquire enqueues a job needing the given service time; done runs when
// service completes. Service order is strictly FIFO.
func (r *Resource) Acquire(service Duration, done func()) {
	if service < 0 {
		service = 0
	}
	j := &job{enqueued: r.sim.Now(), service: service, done: done}
	if r.busy < r.servers {
		r.start(j)
		return
	}
	r.waiting = append(r.waiting, j)
	if len(r.waiting) > r.maxQueueLen {
		r.maxQueueLen = len(r.waiting)
	}
}

func (r *Resource) start(j *job) {
	r.busy++
	r.queueDelay += r.sim.Now().Sub(j.enqueued)
	r.busyTime += j.service
	r.sim.After(j.service, func() {
		r.busy--
		r.served++
		if len(r.waiting) > 0 {
			next := r.waiting[0]
			copy(r.waiting, r.waiting[1:])
			r.waiting[len(r.waiting)-1] = nil
			r.waiting = r.waiting[:len(r.waiting)-1]
			r.start(next)
		}
		if j.done != nil {
			j.done()
		}
	})
}

// Served reports how many jobs completed service.
func (r *Resource) Served() uint64 { return r.served }

// Busy reports how many servers are currently serving.
func (r *Resource) Busy() int { return r.busy }

// QueueLen reports the current number of waiting jobs.
func (r *Resource) QueueLen() int { return len(r.waiting) }

// MaxQueueLen reports the high-water mark of the waiting queue.
func (r *Resource) MaxQueueLen() int { return r.maxQueueLen }

// Utilization returns integrated busy time divided by (servers × span).
func (r *Resource) Utilization(span Duration) float64 {
	if span <= 0 {
		return 0
	}
	return r.busyTime.Seconds() / (float64(r.servers) * span.Seconds())
}

// TotalQueueDelay returns the summed time jobs spent waiting for a server.
func (r *Resource) TotalQueueDelay() Duration { return r.queueDelay }
