package sim

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDurationUnits(t *testing.T) {
	if Second != 1e12 {
		t.Fatalf("Second = %d ps, want 1e12", int64(Second))
	}
	if Microsecond.Micros() != 1 {
		t.Fatalf("Micros() of 1us = %v", Microsecond.Micros())
	}
	if got := FromNanos(10).Nanos(); got != 10 {
		t.Fatalf("FromNanos(10).Nanos() = %v", got)
	}
	if got := FromMicros(2.5); got != 2500*Nanosecond {
		t.Fatalf("FromMicros(2.5) = %v", got)
	}
	if got := FromSeconds(-1); got != 0 {
		t.Fatalf("negative seconds should clamp to 0, got %v", got)
	}
	if got := FromSeconds(1e30); got != Duration(math.MaxInt64) {
		t.Fatalf("huge seconds should saturate, got %v", got)
	}
}

func TestDurationString(t *testing.T) {
	cases := []struct {
		d    Duration
		want string
	}{
		{500, "500ps"},
		{10 * Nanosecond, "10.000ns"},
		{3 * Microsecond, "3.000us"},
		{2 * Millisecond, "2.000ms"},
		{Second, "1.000s"},
	}
	for _, c := range cases {
		if got := c.d.String(); got != c.want {
			t.Errorf("(%d).String() = %q, want %q", int64(c.d), got, c.want)
		}
	}
}

func TestTimeAddSaturates(t *testing.T) {
	tm := MaxTime - 5
	if got := tm.Add(100); got != MaxTime {
		t.Fatalf("Add should saturate at MaxTime, got %d", got)
	}
}

func TestEventOrdering(t *testing.T) {
	s := New()
	var order []int
	s.At(30, func() { order = append(order, 3) })
	s.At(10, func() { order = append(order, 1) })
	s.At(20, func() { order = append(order, 2) })
	s.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("events ran out of order: %v", order)
	}
	if s.Now() != 30 {
		t.Fatalf("clock should end at 30, got %d", s.Now())
	}
	if s.Processed() != 3 {
		t.Fatalf("processed = %d, want 3", s.Processed())
	}
}

func TestSameTimeEventsFIFO(t *testing.T) {
	s := New()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		s.At(100, func() { order = append(order, i) })
	}
	s.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-time events not FIFO: %v", order)
		}
	}
}

func TestScheduleInPastPanics(t *testing.T) {
	s := New()
	s.At(100, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past should panic")
			}
		}()
		s.At(50, func() {})
	})
	s.Run()
}

func TestAfterFromWithinEvent(t *testing.T) {
	s := New()
	var fired Time
	s.At(100, func() {
		s.After(50, func() { fired = s.Now() })
	})
	s.Run()
	if fired != 150 {
		t.Fatalf("chained event fired at %d, want 150", fired)
	}
}

func TestCancel(t *testing.T) {
	s := New()
	ran := false
	id := s.At(10, func() { ran = true })
	if !s.Cancel(id) {
		t.Fatal("first cancel should succeed")
	}
	if s.Cancel(id) {
		t.Fatal("second cancel should fail")
	}
	s.Run()
	if ran {
		t.Fatal("cancelled event still ran")
	}
}

func TestCancelMiddleOfQueue(t *testing.T) {
	s := New()
	var order []int
	s.At(10, func() { order = append(order, 1) })
	id := s.At(20, func() { order = append(order, 2) })
	s.At(30, func() { order = append(order, 3) })
	s.Cancel(id)
	s.Run()
	if len(order) != 2 || order[0] != 1 || order[1] != 3 {
		t.Fatalf("order after cancel = %v, want [1 3]", order)
	}
}

func TestRunUntil(t *testing.T) {
	s := New()
	count := 0
	for i := 1; i <= 10; i++ {
		s.At(Time(i*10), func() { count++ })
	}
	s.RunUntil(50)
	if count != 5 {
		t.Fatalf("RunUntil(50) ran %d events, want 5", count)
	}
	if s.Now() != 50 {
		t.Fatalf("clock = %d, want 50", s.Now())
	}
	if s.Pending() != 5 {
		t.Fatalf("pending = %d, want 5", s.Pending())
	}
	s.Run()
	if count != 10 {
		t.Fatalf("after Run, count = %d, want 10", count)
	}
}

func TestRunForAdvancesIdleClock(t *testing.T) {
	s := New()
	s.RunFor(2 * Second)
	if s.Now() != Time(2*Second) {
		t.Fatalf("idle RunFor should advance clock, now = %d", s.Now())
	}
}

func TestStopInsideEvent(t *testing.T) {
	s := New()
	count := 0
	s.At(10, func() { count++; s.Stop() })
	s.At(20, func() { count++ })
	s.Run()
	if count != 1 {
		t.Fatalf("Stop should halt the loop, count = %d", count)
	}
	s.Run()
	if count != 2 {
		t.Fatalf("Run should resume after Stop, count = %d", count)
	}
}

func TestSelfReschedulingProcess(t *testing.T) {
	s := New()
	ticks := 0
	var tick func()
	tick = func() {
		ticks++
		if ticks < 100 {
			s.After(Microsecond, tick)
		}
	}
	s.After(Microsecond, tick)
	s.Run()
	if ticks != 100 {
		t.Fatalf("ticks = %d, want 100", ticks)
	}
	if s.Now() != Time(100*Microsecond) {
		t.Fatalf("clock = %d, want 100us", s.Now())
	}
}

func TestEventOrderingProperty(t *testing.T) {
	// Property: regardless of insertion order, events execute in
	// nondecreasing time order.
	f := func(times []uint16) bool {
		s := New()
		var fired []Time
		for _, raw := range times {
			tm := Time(raw)
			s.At(tm, func() { fired = append(fired, s.Now()) })
		}
		s.Run()
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				return false
			}
		}
		return len(fired) == len(times)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestResourceSingleServerFIFO(t *testing.T) {
	s := New()
	r := NewResource(s, "port", 1)
	var done []Time
	for i := 0; i < 3; i++ {
		s.At(0, func() {
			r.Acquire(10*Nanosecond, func() { done = append(done, s.Now()) })
		})
	}
	s.Run()
	want := []Time{Time(10 * Nanosecond), Time(20 * Nanosecond), Time(30 * Nanosecond)}
	if len(done) != 3 {
		t.Fatalf("done = %v", done)
	}
	for i := range want {
		if done[i] != want[i] {
			t.Fatalf("completion %d at %v, want %v", i, done[i], want[i])
		}
	}
	if r.Served() != 3 {
		t.Fatalf("served = %d", r.Served())
	}
	if r.MaxQueueLen() != 2 {
		t.Fatalf("max queue = %d, want 2", r.MaxQueueLen())
	}
}

func TestResourceParallelServers(t *testing.T) {
	s := New()
	r := NewResource(s, "ports", 2)
	var done []Time
	for i := 0; i < 4; i++ {
		s.At(0, func() {
			r.Acquire(10*Nanosecond, func() { done = append(done, s.Now()) })
		})
	}
	s.Run()
	// Two at t=10ns, two at t=20ns.
	if done[0] != Time(10*Nanosecond) || done[1] != Time(10*Nanosecond) {
		t.Fatalf("first pair at %v,%v", done[0], done[1])
	}
	if done[2] != Time(20*Nanosecond) || done[3] != Time(20*Nanosecond) {
		t.Fatalf("second pair at %v,%v", done[2], done[3])
	}
}

func TestResourceUtilization(t *testing.T) {
	s := New()
	r := NewResource(s, "link", 1)
	s.At(0, func() { r.Acquire(Second/2, nil) })
	s.Run()
	s.RunUntil(Time(Second))
	if got := r.Utilization(Second); math.Abs(got-0.5) > 1e-9 {
		t.Fatalf("utilization = %v, want 0.5", got)
	}
}

func TestResourceQueueDelay(t *testing.T) {
	s := New()
	r := NewResource(s, "port", 1)
	s.At(0, func() {
		r.Acquire(100*Nanosecond, nil)
		r.Acquire(100*Nanosecond, nil)
	})
	s.Run()
	if got := r.TotalQueueDelay(); got != 100*Nanosecond {
		t.Fatalf("queue delay = %v, want 100ns", got)
	}
}

func TestResourceZeroServersPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for zero servers")
		}
	}()
	NewResource(New(), "bad", 0)
}

func TestResourceNegativeServiceClamped(t *testing.T) {
	s := New()
	r := NewResource(s, "port", 1)
	fired := false
	s.At(5, func() { r.Acquire(-10, func() { fired = true }) })
	s.Run()
	if !fired || s.Now() != 5 {
		t.Fatalf("negative service should complete instantly at t=5, now=%d fired=%v", s.Now(), fired)
	}
}

func TestRandDeterminism(t *testing.T) {
	a, b := NewRand(42), NewRand(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed must produce same stream")
		}
	}
	c := NewRand(43)
	same := 0
	a = NewRand(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds look identical (%d collisions)", same)
	}
}

func TestRandFloat64Range(t *testing.T) {
	r := NewRand(7)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
	}
}

func TestRandIntnRange(t *testing.T) {
	r := NewRand(9)
	seen := make(map[int]bool)
	for i := 0; i < 1000; i++ {
		v := r.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn out of range: %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 10 {
		t.Fatalf("Intn(10) only produced %d distinct values", len(seen))
	}
}

func TestRandExpMean(t *testing.T) {
	r := NewRand(11)
	var sum float64
	n := 20000
	for i := 0; i < n; i++ {
		sum += r.Exp(100 * Microsecond).Seconds()
	}
	mean := sum / float64(n)
	want := (100 * Microsecond).Seconds()
	if mean < want*0.95 || mean > want*1.05 {
		t.Fatalf("Exp mean = %v, want ~%v", mean, want)
	}
}

func TestRandZeroSeed(t *testing.T) {
	r := NewRand(0)
	if r.Uint64() == 0 && r.Uint64() == 0 {
		t.Fatal("zero seed generator is stuck")
	}
}

func TestAcquireInfoTimings(t *testing.T) {
	s := New()
	r := NewResource(s, "srv", 1)
	var infos []ServiceInfo
	r.AcquireInfo(30*Nanosecond, func(i ServiceInfo) { infos = append(infos, i) })
	r.AcquireInfo(30*Nanosecond, func(i ServiceInfo) { infos = append(infos, i) })
	s.Run()
	if len(infos) != 2 {
		t.Fatalf("got %d completions, want 2", len(infos))
	}
	first, second := infos[0], infos[1]
	if first.Wait() != 0 || first.Service() != 30*Nanosecond {
		t.Fatalf("first job wait=%v service=%v", first.Wait(), first.Service())
	}
	if second.Wait() != 30*Nanosecond || second.Service() != 30*Nanosecond {
		t.Fatalf("second job wait=%v service=%v", second.Wait(), second.Service())
	}
	if second.Completed != Time(60*Nanosecond) {
		t.Fatalf("second job completed at %v", second.Completed)
	}
}

func TestResourceHooksFire(t *testing.T) {
	s := New()
	r := NewResource(s, "srv", 1)
	var enq, started, completed int
	var sawQueueLen int
	r.SetHooks(&ResourceHooks{
		Enqueued:  func(now Time, queueLen int) { enq++; sawQueueLen = queueLen },
		Started:   func(now Time, wait Duration) { started++ },
		Completed: func(now Time, wait, service Duration) { completed++ },
	})
	r.Acquire(10*Nanosecond, nil) // immediate start: no Enqueued, no Started (wait==0)
	r.Acquire(10*Nanosecond, nil) // queues, then starts after waiting
	s.Run()
	if enq != 1 || sawQueueLen != 1 {
		t.Fatalf("Enqueued fired %d times (queueLen %d), want 1/1", enq, sawQueueLen)
	}
	if started != 1 {
		t.Fatalf("Started fired %d times, want 1 (only the waiting job)", started)
	}
	if completed != 2 {
		t.Fatalf("Completed fired %d times, want 2", completed)
	}
}

func TestDispatchHook(t *testing.T) {
	s := New()
	var times []Time
	s.SetDispatchHook(func(now Time) { times = append(times, now) })
	s.After(5*Nanosecond, func() {})
	s.After(10*Nanosecond, func() {})
	s.Run()
	if len(times) != 2 || times[0] != Time(5*Nanosecond) || times[1] != Time(10*Nanosecond) {
		t.Fatalf("dispatch hook saw %v", times)
	}
	s.SetDispatchHook(nil)
	s.After(Nanosecond, func() {})
	s.Run()
	if len(times) != 2 {
		t.Fatal("removed hook still fired")
	}
}
