// Package sim provides a deterministic discrete-event simulation kernel.
//
// Time is modeled in integer picoseconds so that component models (CPU
// cycles at GHz frequencies, DRAM latencies in nanoseconds, Flash
// latencies in microseconds and 10GbE wire times) compose without
// floating-point drift. A Simulator owns a monotonically increasing
// clock and a priority queue of events; everything in the kv3d model
// layer (cores, memory ports, NICs, clients) runs on top of it.
//
// The kernel is intentionally single-threaded: determinism matters more
// than host parallelism for reproducing the paper's tables, and the
// models themselves are cheap.
package sim

import (
	"container/heap"
	"fmt"
	"math"
)

// Time is a simulation timestamp in picoseconds since simulation start.
type Time int64

// Duration is a span of simulated time in picoseconds.
type Duration int64

// Common duration units.
const (
	Picosecond  Duration = 1
	Nanosecond           = 1000 * Picosecond
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
)

// MaxTime is the largest representable simulation time.
const MaxTime Time = math.MaxInt64

// Seconds converts a duration to floating-point seconds.
func (d Duration) Seconds() float64 { return float64(d) / float64(Second) }

// Micros converts a duration to floating-point microseconds.
func (d Duration) Micros() float64 { return float64(d) / float64(Microsecond) }

// Nanos converts a duration to floating-point nanoseconds.
func (d Duration) Nanos() float64 { return float64(d) / float64(Nanosecond) }

func (d Duration) String() string {
	switch {
	case d >= Second:
		return fmt.Sprintf("%.3fs", d.Seconds())
	case d >= Millisecond:
		return fmt.Sprintf("%.3fms", float64(d)/float64(Millisecond))
	case d >= Microsecond:
		return fmt.Sprintf("%.3fus", d.Micros())
	case d >= Nanosecond:
		return fmt.Sprintf("%.3fns", d.Nanos())
	default:
		return fmt.Sprintf("%dps", int64(d))
	}
}

// FromSeconds builds a Duration from floating-point seconds, saturating
// instead of overflowing.
func FromSeconds(s float64) Duration {
	ps := s * float64(Second)
	if ps >= math.MaxInt64 {
		return Duration(math.MaxInt64)
	}
	if ps <= 0 {
		return 0
	}
	return Duration(ps + 0.5)
}

// FromNanos builds a Duration from floating-point nanoseconds.
func FromNanos(ns float64) Duration { return FromSeconds(ns * 1e-9) }

// FromMicros builds a Duration from floating-point microseconds.
func FromMicros(us float64) Duration { return FromSeconds(us * 1e-6) }

// Add offsets a Time by a Duration, saturating at MaxTime.
func (t Time) Add(d Duration) Time {
	if int64(t) > int64(MaxTime)-int64(d) {
		return MaxTime
	}
	return t + Time(d)
}

// Sub returns the Duration between two times.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Event is a scheduled callback.
type event struct {
	when Time
	seq  uint64 // tie-break so same-time events run in schedule order
	fn   func()
	// index in the heap, or -1 when cancelled/popped.
	index int
}

// EventID identifies a scheduled event so it can be cancelled.
type EventID struct{ ev *event }

type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].when != q[j].when {
		return q[i].when < q[j].when
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}
func (q *eventQueue) Push(x any) {
	ev := x.(*event)
	ev.index = len(*q)
	*q = append(*q, ev)
}
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*q = old[:n-1]
	return ev
}

// Simulator owns the clock and the pending event queue.
type Simulator struct {
	now       Time
	queue     eventQueue
	seq       uint64
	processed uint64
	running   bool
	dispatch  DispatchHook
}

// DispatchHook observes event dispatch: it runs after each event
// executes, with the event's timestamp. Observability code (the obs
// package) uses it to count dispatched events; it must not schedule or
// cancel events, only observe.
type DispatchHook func(now Time)

// SetDispatchHook installs (or, with nil, removes) the dispatch hook.
// The disabled path costs one nil-check per event.
func (s *Simulator) SetDispatchHook(h DispatchHook) { s.dispatch = h }

// New returns an empty simulator at time zero.
func New() *Simulator { return &Simulator{} }

// Now returns the current simulation time.
func (s *Simulator) Now() Time { return s.now }

// Processed reports how many events have been executed so far.
func (s *Simulator) Processed() uint64 { return s.processed }

// Pending reports how many events are currently scheduled.
func (s *Simulator) Pending() int { return len(s.queue) }

// At schedules fn to run at absolute time t. Scheduling in the past
// (before Now) panics: it is always a model bug.
func (s *Simulator) At(t Time, fn func()) EventID {
	if t < s.now {
		panic(fmt.Sprintf("sim: scheduling event at %d before now %d", t, s.now))
	}
	ev := &event{when: t, seq: s.seq, fn: fn}
	s.seq++
	heap.Push(&s.queue, ev)
	return EventID{ev}
}

// After schedules fn to run d after the current time.
func (s *Simulator) After(d Duration, fn func()) EventID {
	if d < 0 {
		d = 0
	}
	return s.At(s.now.Add(d), fn)
}

// Cancel removes a scheduled event. Cancelling an already-fired or
// already-cancelled event is a no-op and returns false.
func (s *Simulator) Cancel(id EventID) bool {
	if id.ev == nil || id.ev.index < 0 {
		return false
	}
	heap.Remove(&s.queue, id.ev.index)
	id.ev.index = -1
	return true
}

// Step executes the single next event, if any, and reports whether one
// ran. It is the kernel's event-dispatch hot path: every simulated
// event in every experiment funnels through here.
//
//kv3d:hotpath
func (s *Simulator) Step() bool {
	if len(s.queue) == 0 {
		return false
	}
	ev := heap.Pop(&s.queue).(*event)
	s.now = ev.when
	s.processed++
	ev.fn()
	if s.dispatch != nil {
		s.dispatch(ev.when)
	}
	return true
}

// Run executes events until the queue is empty.
func (s *Simulator) Run() {
	s.running = true
	for s.running && s.Step() {
	}
	s.running = false
}

// RunUntil executes events with timestamps <= deadline. The clock is
// advanced to the deadline even if the queue drains earlier.
func (s *Simulator) RunUntil(deadline Time) {
	s.running = true
	for s.running && len(s.queue) > 0 && s.queue[0].when <= deadline {
		s.Step()
	}
	s.running = false
	if s.now < deadline {
		s.now = deadline
	}
}

// RunFor executes events for a span of simulated time from Now.
func (s *Simulator) RunFor(d Duration) { s.RunUntil(s.now.Add(d)) }

// Stop halts a Run/RunUntil loop from inside an event callback.
func (s *Simulator) Stop() { s.running = false }
