// Package workload generates the request streams the experiments and
// examples use: the paper's request-size sweep (64B–1MB, doubling),
// Zipfian key popularity, GET/PUT mixes, and an ETC-like value-size
// distribution modeled on the Atikoglu et al. (SIGMETRICS 2012) workload
// analysis the paper cites.
package workload

import (
	"fmt"
	"math"

	"kv3d/internal/sim"
)

// SizeSweep returns the paper's request sizes: 64B to 1MB, doubling
// (§5.2), 15 points.
func SizeSweep() []int64 {
	var out []int64
	for s := int64(64); s <= 1<<20; s *= 2 {
		out = append(out, s)
	}
	return out
}

// Zipf draws ranks in [0, n) with probability proportional to
// 1/(rank+1)^s using inverse-CDF sampling over a precomputed table.
// Deterministic given the Rand stream.
type Zipf struct {
	cdf []float64
}

// NewZipf builds the distribution; s is the skew (1.01 is the classic
// memcached-trace value), n the key-space size.
func NewZipf(s float64, n int) (*Zipf, error) {
	if n <= 0 {
		return nil, fmt.Errorf("workload: zipf needs positive n, got %d", n)
	}
	if s <= 0 {
		return nil, fmt.Errorf("workload: zipf skew must be positive, got %v", s)
	}
	cdf := make([]float64, n)
	var sum float64
	for i := 0; i < n; i++ {
		sum += 1 / math.Pow(float64(i+1), s)
		cdf[i] = sum
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	return &Zipf{cdf: cdf}, nil
}

// Sample draws a rank; rank 0 is the hottest key.
func (z *Zipf) Sample(r *sim.Rand) int {
	u := r.Float64()
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// N returns the key-space size.
func (z *Zipf) N() int { return len(z.cdf) }

// Request is one generated operation.
type Request struct {
	// Key is the rank-derived key name.
	Key string
	// IsGet distinguishes GET from SET.
	IsGet bool
	// ValueBytes is the object size (for SETs, and the expected size of
	// GET responses).
	ValueBytes int64
}

// MixConfig configures a request generator.
type MixConfig struct {
	// GetFraction is the read share; Facebook's ETC pool runs ~0.97.
	GetFraction float64
	// Keys is the key-space size.
	Keys int
	// ZipfSkew shapes popularity (0 disables skew: uniform).
	ZipfSkew float64
	// Values picks object sizes.
	Values ValueSizer
	// Seed makes the stream reproducible.
	Seed uint64
}

// Generator produces a deterministic request stream.
type Generator struct {
	cfg  MixConfig
	rng  *sim.Rand
	zipf *Zipf
}

// NewGenerator validates and builds a generator.
func NewGenerator(cfg MixConfig) (*Generator, error) {
	if cfg.GetFraction < 0 || cfg.GetFraction > 1 {
		return nil, fmt.Errorf("workload: get fraction %v outside [0,1]", cfg.GetFraction)
	}
	if cfg.Keys <= 0 {
		return nil, fmt.Errorf("workload: need a positive key count, got %d", cfg.Keys)
	}
	if cfg.Values == nil {
		cfg.Values = FixedSize(64)
	}
	g := &Generator{cfg: cfg, rng: sim.NewRand(cfg.Seed)}
	if cfg.ZipfSkew > 0 {
		z, err := NewZipf(cfg.ZipfSkew, cfg.Keys)
		if err != nil {
			return nil, err
		}
		g.zipf = z
	}
	return g, nil
}

// Next produces the next request.
func (g *Generator) Next() Request {
	var rank int
	if g.zipf != nil {
		rank = g.zipf.Sample(g.rng)
	} else {
		rank = g.rng.Intn(g.cfg.Keys)
	}
	return Request{
		Key:        fmt.Sprintf("key:%08d", rank),
		IsGet:      g.rng.Float64() < g.cfg.GetFraction,
		ValueBytes: g.cfg.Values.Sample(g.rng),
	}
}

// ValueSizer draws object sizes.
type ValueSizer interface {
	Sample(r *sim.Rand) int64
}

// FixedSize always returns the same size.
type FixedSize int64

// Sample implements ValueSizer.
func (f FixedSize) Sample(*sim.Rand) int64 { return int64(f) }

// ETCSizes approximates the Facebook ETC value-size distribution from
// Atikoglu et al.: dominated by tiny values with a heavy tail.
type ETCSizes struct{}

// Sample implements ValueSizer: a discretized mixture fitted to the
// published CDF (median ≈ a few hundred bytes, tail to 1MB).
func (ETCSizes) Sample(r *sim.Rand) int64 {
	u := r.Float64()
	switch {
	case u < 0.40:
		return 11 + int64(r.Intn(90)) // tiny values, tens of bytes
	case u < 0.70:
		return 100 + int64(r.Intn(400))
	case u < 0.90:
		return 500 + int64(r.Intn(3600))
	case u < 0.99:
		return 4 << 10 << uint(r.Intn(4)) // 4-32KB
	default:
		return 64 << 10 << uint(r.Intn(5)) // 64KB-1MB tail
	}
}

// McDipperSizes models a Facebook photo-serving working set: large
// objects, low request rate (the Iridium target workload, §3.5).
type McDipperSizes struct{}

// Sample implements ValueSizer.
func (McDipperSizes) Sample(r *sim.Rand) int64 {
	u := r.Float64()
	switch {
	case u < 0.5:
		return 8<<10 + int64(r.Intn(24<<10)) // thumbnails 8-32KB
	case u < 0.9:
		return 32<<10 + int64(r.Intn(96<<10)) // medium photos
	default:
		return 128<<10 + int64(r.Intn(896<<10)) // originals up to 1MB
	}
}
