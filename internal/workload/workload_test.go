package workload

import (
	"testing"
	"testing/quick"

	"kv3d/internal/sim"
)

func TestSizeSweep(t *testing.T) {
	sizes := SizeSweep()
	if len(sizes) != 15 {
		t.Fatalf("sweep has %d points, want 15 (64B..1MB doubling)", len(sizes))
	}
	if sizes[0] != 64 || sizes[len(sizes)-1] != 1<<20 {
		t.Fatalf("sweep endpoints: %d..%d", sizes[0], sizes[len(sizes)-1])
	}
	for i := 1; i < len(sizes); i++ {
		if sizes[i] != sizes[i-1]*2 {
			t.Fatal("sweep must double")
		}
	}
}

func TestZipfValidation(t *testing.T) {
	if _, err := NewZipf(1.01, 0); err == nil {
		t.Fatal("zero n accepted")
	}
	if _, err := NewZipf(0, 10); err == nil {
		t.Fatal("zero skew accepted")
	}
}

func TestZipfSkewConcentratesMass(t *testing.T) {
	z, err := NewZipf(1.01, 10000)
	if err != nil {
		t.Fatal(err)
	}
	r := sim.NewRand(1)
	counts := make(map[int]int)
	const n = 100_000
	for i := 0; i < n; i++ {
		counts[z.Sample(r)]++
	}
	top10 := 0
	for rank := 0; rank < 10; rank++ {
		top10 += counts[rank]
	}
	if frac := float64(top10) / n; frac < 0.25 {
		t.Fatalf("top-10 keys got %.1f%% of traffic, want heavy skew", frac*100)
	}
	if counts[0] < counts[100] {
		t.Fatal("rank 0 must be hotter than rank 100")
	}
}

func TestZipfSampleInRangeProperty(t *testing.T) {
	z, _ := NewZipf(0.8, 100)
	r := sim.NewRand(2)
	f := func(uint8) bool {
		v := z.Sample(r)
		return v >= 0 && v < z.N()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestGeneratorValidation(t *testing.T) {
	if _, err := NewGenerator(MixConfig{GetFraction: 1.5, Keys: 10}); err == nil {
		t.Fatal("bad get fraction accepted")
	}
	if _, err := NewGenerator(MixConfig{GetFraction: 0.9, Keys: 0}); err == nil {
		t.Fatal("zero keys accepted")
	}
}

func TestGeneratorMix(t *testing.T) {
	g, err := NewGenerator(MixConfig{GetFraction: 0.9, Keys: 1000, ZipfSkew: 1.01, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	gets := 0
	const n = 10_000
	for i := 0; i < n; i++ {
		req := g.Next()
		if req.IsGet {
			gets++
		}
		if req.Key == "" || req.ValueBytes <= 0 {
			t.Fatalf("bad request %+v", req)
		}
	}
	frac := float64(gets) / n
	if frac < 0.88 || frac > 0.92 {
		t.Fatalf("get fraction = %.3f, want ~0.9", frac)
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	mk := func() *Generator {
		g, _ := NewGenerator(MixConfig{GetFraction: 0.5, Keys: 100, Seed: 42})
		return g
	}
	a, b := mk(), mk()
	for i := 0; i < 100; i++ {
		ra, rb := a.Next(), b.Next()
		if ra != rb {
			t.Fatal("same seed must generate the same stream")
		}
	}
}

func TestGeneratorUniformWithoutSkew(t *testing.T) {
	g, _ := NewGenerator(MixConfig{GetFraction: 1, Keys: 10, Seed: 3})
	counts := map[string]int{}
	for i := 0; i < 10_000; i++ {
		counts[g.Next().Key]++
	}
	for k, c := range counts {
		if c < 700 || c > 1300 {
			t.Fatalf("uniform key %s drawn %d times of 10000", k, c)
		}
	}
}

func TestFixedSize(t *testing.T) {
	if FixedSize(128).Sample(nil) != 128 {
		t.Fatal("fixed size")
	}
}

func TestETCSizesShape(t *testing.T) {
	r := sim.NewRand(5)
	var small, large int
	const n = 50_000
	for i := 0; i < n; i++ {
		v := ETCSizes{}.Sample(r)
		if v <= 0 || v > 1<<20 {
			t.Fatalf("ETC size out of range: %d", v)
		}
		if v < 1024 {
			small++
		}
		if v >= 64<<10 {
			large++
		}
	}
	if float64(small)/n < 0.6 {
		t.Fatalf("ETC should be dominated by small values, got %.2f", float64(small)/n)
	}
	if large == 0 {
		t.Fatal("ETC needs a heavy tail")
	}
}

func TestMcDipperSizesShape(t *testing.T) {
	r := sim.NewRand(6)
	var sum int64
	const n = 20_000
	for i := 0; i < n; i++ {
		v := McDipperSizes{}.Sample(r)
		if v < 8<<10 || v > 1<<20 {
			t.Fatalf("photo size out of range: %d", v)
		}
		sum += v
	}
	mean := sum / n
	if mean < 20<<10 || mean > 200<<10 {
		t.Fatalf("photo mean size = %d, want tens-to-hundreds of KB", mean)
	}
}
