// Package cache models the on-stack cache hierarchy. Mercury's premise
// (following TSSP) is that the 3D DRAM is fast enough to skip the L2
// entirely; Iridium needs a 2MB L2 to keep the instruction footprint out
// of Flash. The model therefore answers one question per request: of the
// L1 misses an instruction block generates, how many are absorbed by the
// L2 (at L2 latency) and how many go to memory?
package cache

import (
	"kv3d/internal/sim"
)

// Hierarchy describes the cache configuration above memory.
type Hierarchy struct {
	// HasL2 toggles the 2MB L2.
	HasL2 bool
	// L2SizeBytes is informational (area/power accounting lives in phys).
	L2SizeBytes int64
	// L2HitRate is the fraction of L1 misses the L2 absorbs in steady
	// state. The memcached instruction footprint plus hot metadata fit
	// in 2MB, so this is high; the remainder is per-request-unique data
	// (hash bucket, item header, socket buffers) that no cache retains.
	L2HitRate float64
	// L2LatencyCycles is the lookup cost in core cycles, paid by L2 hits
	// (and added to misses on their way to memory).
	L2LatencyCycles float64
}

// None returns the cache-less configuration: every L1 miss goes to memory.
func None() Hierarchy { return Hierarchy{} }

// L2MB2 returns the paper's 2MB L2 configuration.
func L2MB2() Hierarchy {
	return Hierarchy{
		HasL2:           true,
		L2SizeBytes:     2 << 20,
		L2HitRate:       0.995,
		L2LatencyCycles: 12,
	}
}

// Split divides a block's L1 misses into L2-served and memory-bound
// counts. Without an L2, everything is memory-bound.
func (h Hierarchy) Split(l1Misses float64) (l2Served, memBound float64) {
	if l1Misses <= 0 {
		return 0, 0
	}
	if !h.HasL2 {
		return 0, l1Misses
	}
	l2Served = l1Misses * h.L2HitRate
	return l2Served, l1Misses - l2Served
}

// StallLatency computes the total (un-overlapped) miss latency for a
// block: L2 hits pay the L2 lookup, memory trips pay lookup plus the
// memory access latency supplied by the memory model.
func (h Hierarchy) StallLatency(l1Misses float64, cycle sim.Duration, memLatency sim.Duration) sim.Duration {
	l2Served, memBound := h.Split(l1Misses)
	lookup := float64(cycle) * h.L2LatencyCycles
	total := l2Served*lookup + memBound*(lookup+float64(memLatency))
	return sim.Duration(total)
}

// String names the configuration for experiment labels.
func (h Hierarchy) String() string {
	if h.HasL2 {
		return "2MB L2"
	}
	return "no L2"
}
