package cache

import (
	"testing"

	"kv3d/internal/sim"
)

func TestNone(t *testing.T) {
	h := None()
	if h.HasL2 {
		t.Fatal("None should have no L2")
	}
	l2, mem := h.Split(1000)
	if l2 != 0 || mem != 1000 {
		t.Fatalf("no-L2 split = %v/%v", l2, mem)
	}
	if h.String() != "no L2" {
		t.Fatalf("name = %q", h.String())
	}
}

func TestL2MB2(t *testing.T) {
	h := L2MB2()
	if !h.HasL2 || h.L2SizeBytes != 2<<20 {
		t.Fatalf("config = %+v", h)
	}
	l2, mem := h.Split(1000)
	if l2+mem != 1000 {
		t.Fatal("split must conserve misses")
	}
	if mem >= 100 {
		t.Fatalf("L2 should absorb most misses, %v went to memory", mem)
	}
	if h.String() != "2MB L2" {
		t.Fatalf("name = %q", h.String())
	}
}

func TestSplitZeroMisses(t *testing.T) {
	for _, h := range []Hierarchy{None(), L2MB2()} {
		l2, mem := h.Split(0)
		if l2 != 0 || mem != 0 {
			t.Fatal("zero misses should split to zero")
		}
	}
}

func TestStallLatencyNoL2(t *testing.T) {
	h := None()
	cycle := sim.Nanosecond
	got := h.StallLatency(100, cycle, 10*sim.Nanosecond)
	if got != sim.Microsecond {
		t.Fatalf("no-L2 stall = %v, want 100x10ns = 1us", got)
	}
}

func TestStallLatencyL2AbsorbsSlowMemory(t *testing.T) {
	h := L2MB2()
	cycle := sim.Nanosecond
	fast := h.StallLatency(1000, cycle, 10*sim.Nanosecond)
	slow := h.StallLatency(1000, cycle, 100*sim.Nanosecond)
	// With an L2, raising memory latency 10x should raise stalls far
	// less than 10x (the paper's §6.2 observation).
	if slow.Seconds()/fast.Seconds() > 2.0 {
		t.Fatalf("L2 not absorbing latency: %v -> %v", fast, slow)
	}
	noL2Fast := None().StallLatency(1000, cycle, 10*sim.Nanosecond)
	noL2Slow := None().StallLatency(1000, cycle, 100*sim.Nanosecond)
	if noL2Slow.Seconds()/noL2Fast.Seconds() < 9.9 {
		t.Fatal("no-L2 stalls must scale with memory latency")
	}
}

func TestStallLatencyL2CostsAtFastMemory(t *testing.T) {
	// At 10ns DRAM, the L2 lookup overhead makes the hierarchy slower
	// than going straight to memory — the paper's "L2 may hinder".
	cycle := sim.Nanosecond
	withL2 := L2MB2().StallLatency(1000, cycle, 10*sim.Nanosecond)
	without := None().StallLatency(1000, cycle, 10*sim.Nanosecond)
	if withL2 <= without {
		t.Fatalf("at 10ns, L2 (%v) should not beat direct access (%v)", withL2, without)
	}
}
