// Package phys holds the physical-design models of a 1.5U Mercury or
// Iridium server: the Table 1 component power figures composed into
// per-stack and per-server power (§5.4), and the board/package area
// model (§5.5). Three constraints cap the number of stacks: the power
// budget, the motherboard area, and the 96 back-panel Ethernet ports.
package phys

import (
	"math"

	"kv3d/internal/cpu"
	"kv3d/internal/memmodel"
	"kv3d/internal/netmodel"
)

// Power-budget constants (§5.4.1).
const (
	// SupplyW is the HP 750W common-slot supply.
	SupplyW = 750.0
	// OtherComponentsW is reserved for disk, motherboard, fans.
	OtherComponentsW = 160.0
	// DeliveryEfficiency is the conservative margin for conversion and
	// delivery losses.
	DeliveryEfficiency = 0.8
)

// StackBudgetW is the power available to stacks: (750-160) x 0.8 = 472W.
func StackBudgetW() float64 {
	return (SupplyW - OtherComponentsW) * DeliveryEfficiency
}

// StackPowerW composes one stack's power draw: cores, NIC MAC, its share
// of the PHY, and the memory at the given sustained bandwidth.
func StackPowerW(core cpu.Core, coresPerStack int, mem memmodel.Device, bwBytesPerSec float64) float64 {
	cores := float64(coresPerStack) * core.PowerW
	nic := netmodel.MACPowerW + netmodel.PHYPowerW
	memory := mem.BackgroundW() + mem.ActiveWPerGBps()*(bwBytesPerSec/1e9)
	return cores + nic + memory
}

// ServerPowerW lifts total stack power to wall power: delivery losses
// plus the fixed server overhead.
func ServerPowerW(stackPowerW float64, stacks int) float64 {
	return OtherComponentsW + stackPowerW*float64(stacks)/DeliveryEfficiency
}

// MaxStacksByPower returns how many stacks of the given draw fit in the
// stack budget.
func MaxStacksByPower(stackPowerW float64) int {
	if stackPowerW <= 0 {
		return 0
	}
	return int(math.Floor(StackBudgetW() / stackPowerW))
}

// Area constants (§5.5).
const (
	// StackPackageMM2 is the 21mm x 21mm 400-pin BGA.
	StackPackageMM2 = 441.0
	// PHYShareMM2 is half of a dual-PHY 441mm^2 chip.
	PHYShareMM2 = netmodel.PHYChipMM2 / netmodel.PHYsPerChip
	// BoardCM2 is the 13in x 13in motherboard.
	BoardCM2 = 1089.0
	// BoardUsableFraction of the board carries stacks and PHYs.
	BoardUsableFraction = 0.77
	// MaxNICPorts caps stacks at the 96 back-panel ports.
	MaxNICPorts = netmodel.MaxServerNICs
)

// StackAreaCM2 is the board area per stack including its PHY share
// (441 + 220.5 mm^2 = 6.615 cm^2).
func StackAreaCM2() float64 {
	return (StackPackageMM2 + PHYShareMM2) / 100.0
}

// MaxStacksByArea returns how many stacks fit on the usable board area.
func MaxStacksByArea() int {
	return int(math.Floor(BoardCM2 * BoardUsableFraction / StackAreaCM2()))
}

// ServerAreaCM2 is the board area consumed by the given stack count.
func ServerAreaCM2(stacks int) float64 {
	return float64(stacks) * StackAreaCM2()
}

// Constraint names the binding limit on stack count.
type Constraint string

const (
	// LimitPower means the 472W stack budget binds.
	LimitPower Constraint = "power"
	// LimitPorts means the 96 Ethernet ports bind.
	LimitPorts Constraint = "ports"
	// LimitArea means board area binds.
	LimitArea Constraint = "area"
)

// MaxStacks applies all three constraints and reports which one binds.
func MaxStacks(stackPowerW float64) (int, Constraint) {
	byPower := MaxStacksByPower(stackPowerW)
	byArea := MaxStacksByArea()
	n, limit := byPower, LimitPower
	if byArea < n {
		n, limit = byArea, LimitArea
	}
	if MaxNICPorts < n {
		n, limit = MaxNICPorts, LimitPorts
	}
	if n < 0 {
		n = 0
	}
	return n, limit
}

// Table1Row is one row of the paper's component power/area table.
type Table1Row struct {
	Component string
	PowerW    float64
	PowerUnit string
	AreaMM2   float64
}

// Table1 returns the paper's Table 1 rows.
func Table1() []Table1Row {
	return []Table1Row{
		{Component: "A7@1GHz", PowerW: 0.100, PowerUnit: "W", AreaMM2: 0.58},
		{Component: "A15@1GHz", PowerW: 0.600, PowerUnit: "W", AreaMM2: 2.82},
		{Component: "A15@1.5GHz", PowerW: 1.000, PowerUnit: "W", AreaMM2: 2.82},
		{Component: "3D DRAM (4GB)", PowerW: 0.210, PowerUnit: "W per GB/s", AreaMM2: 279.00},
		{Component: "3D NAND Flash (19.8GB)", PowerW: 0.006, PowerUnit: "W per GB/s", AreaMM2: 279.00},
		{Component: "3D Stack NIC (MAC)", PowerW: 0.120, PowerUnit: "W", AreaMM2: 0.43},
		{Component: "Physical NIC (PHY)", PowerW: 0.300, PowerUnit: "W", AreaMM2: 220.00},
	}
}
