package phys

import (
	"math"
	"testing"

	"kv3d/internal/cpu"
	"kv3d/internal/memmodel"
	"kv3d/internal/sim"
)

func TestStackBudget(t *testing.T) {
	if got := StackBudgetW(); math.Abs(got-472) > 1e-9 {
		t.Fatalf("stack budget = %v, paper computes 472W", got)
	}
}

func TestStackPowerComposition(t *testing.T) {
	dram := memmodel.MustDRAM3D(10 * sim.Nanosecond)
	// 8 A7 cores + MAC + PHY + DRAM background, no bandwidth.
	got := StackPowerW(cpu.CortexA7(), 8, dram, 0)
	want := 8*0.1 + 0.12 + 0.30 + memmodel.DRAMBackgroundW
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("stack power = %v, want %v", got, want)
	}
	// Bandwidth power: +210mW per GB/s.
	withBW := StackPowerW(cpu.CortexA7(), 8, dram, 2e9)
	if math.Abs(withBW-got-0.42) > 1e-9 {
		t.Fatalf("2GB/s should add 0.42W, added %v", withBW-got)
	}
}

func TestFlashPowerFarBelowDRAM(t *testing.T) {
	dram := memmodel.MustDRAM3D(10 * sim.Nanosecond)
	flash := memmodel.MustFlash3D(10*sim.Microsecond, 200*sim.Microsecond)
	bw := 1e9
	d := StackPowerW(cpu.CortexA7(), 1, dram, bw)
	f := StackPowerW(cpu.CortexA7(), 1, flash, bw)
	if f >= d {
		t.Fatalf("flash stack (%vW) should draw less than DRAM stack (%vW)", f, d)
	}
}

func TestServerPower(t *testing.T) {
	// 96 stacks of 1W: 160 + 96/0.8 = 280W.
	if got := ServerPowerW(1.0, 96); math.Abs(got-280) > 1e-9 {
		t.Fatalf("server power = %v", got)
	}
}

func TestMaxStacksByPower(t *testing.T) {
	if got := MaxStacksByPower(4.72); got != 100 {
		t.Fatalf("472/4.72 = %d, want 100", got)
	}
	if got := MaxStacksByPower(0); got != 0 {
		t.Fatalf("zero power stacks = %d", got)
	}
}

func TestStackArea(t *testing.T) {
	if got := StackAreaCM2(); math.Abs(got-6.615) > 1e-9 {
		t.Fatalf("stack area = %v cm2, paper computes 6.615", got)
	}
	// Paper §5.5: ~128 stacks fit on 77% of a 13x13in board.
	if got := MaxStacksByArea(); got < 120 || got > 130 {
		t.Fatalf("area-limited stacks = %d, paper says ~128", got)
	}
	if got := ServerAreaCM2(96); math.Abs(got-635.04) > 0.01 {
		t.Fatalf("96-stack area = %v, Table 3 says 635", got)
	}
}

func TestMaxStacksConstraintSelection(t *testing.T) {
	// Low power per stack: ports bind at 96.
	n, limit := MaxStacks(0.5)
	if n != 96 || limit != LimitPorts {
		t.Fatalf("got %d/%s, want 96/ports", n, limit)
	}
	// High power per stack: power binds.
	n, limit = MaxStacks(10)
	if n != 47 || limit != LimitPower {
		t.Fatalf("got %d/%s, want 47/power", n, limit)
	}
}

func TestTable1Rows(t *testing.T) {
	rows := Table1()
	if len(rows) != 7 {
		t.Fatalf("Table 1 has %d rows", len(rows))
	}
	byName := map[string]Table1Row{}
	for _, r := range rows {
		byName[r.Component] = r
	}
	if byName["A7@1GHz"].PowerW != 0.1 || byName["A7@1GHz"].AreaMM2 != 0.58 {
		t.Fatal("A7 row wrong")
	}
	if byName["A15@1.5GHz"].PowerW != 1.0 {
		t.Fatal("A15@1.5 row wrong")
	}
	if byName["3D DRAM (4GB)"].PowerUnit != "W per GB/s" {
		t.Fatal("DRAM power unit wrong")
	}
}

func TestCoreConstantsAgreeWithTable1(t *testing.T) {
	rows := Table1()
	byName := map[string]Table1Row{}
	for _, r := range rows {
		byName[r.Component] = r
	}
	if cpu.CortexA7().PowerW != byName["A7@1GHz"].PowerW {
		t.Fatal("cpu package and Table 1 disagree on A7 power")
	}
	if cpu.MustCortexA15(1e9).PowerW != byName["A15@1GHz"].PowerW {
		t.Fatal("cpu package and Table 1 disagree on A15@1GHz power")
	}
}
