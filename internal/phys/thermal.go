package phys

import (
	"kv3d/internal/cpu"
	"kv3d/internal/memmodel"
)

// Thermal model (§6.5): a Mercury server spreads its TDP across 96
// packages instead of concentrating it in a few sockets, so each stack
// stays within passive-cooling limits and a single 1.5U fan wall
// suffices.
const (
	// PassiveCoolingLimitW is the sustainable dissipation of a 21mm BGA
	// package with heat spreader under chassis airflow, no heatsink.
	PassiveCoolingLimitW = 8.0
	// ChassisAirflowLimitW is what a 1.5U fan wall can extract in total.
	ChassisAirflowLimitW = 800.0
	// AmbientC and JunctionMaxC bound the thermal budget.
	AmbientC     = 35.0
	JunctionMaxC = 95.0
	// ThetaJAPassive is the junction-to-ambient thermal resistance
	// (°C/W) of the package under forced chassis airflow.
	ThetaJAPassive = 7.0
)

// ThermalReport summarizes the §6.5 analysis for one configuration.
type ThermalReport struct {
	StackTDPW      float64
	JunctionC      float64
	PassiveOK      bool
	ServerTDPW     float64
	AirflowOK      bool
	HotspotMarginC float64
}

// Thermal evaluates per-stack and chassis-level cooling for a
// configuration at the given per-stack memory bandwidth.
func Thermal(core cpu.Core, coresPerStack int, mem memmodel.Device, bwBytesPerSec float64, stacks int) ThermalReport {
	tdp := StackPowerW(core, coresPerStack, mem, bwBytesPerSec)
	junction := AmbientC + tdp*ThetaJAPassive
	server := tdp * float64(stacks)
	return ThermalReport{
		StackTDPW:      tdp,
		JunctionC:      junction,
		PassiveOK:      tdp <= PassiveCoolingLimitW && junction <= JunctionMaxC,
		ServerTDPW:     server,
		AirflowOK:      server <= ChassisAirflowLimitW,
		HotspotMarginC: JunctionMaxC - junction,
	}
}
